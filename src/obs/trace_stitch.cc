#include "obs/trace_stitch.h"

#include <cstdlib>
#include <memory>
#include <utility>

namespace tardis {
namespace obs {

namespace {

/// Finds the inner content of the top-level "traceEvents":[ ... ] array,
/// honouring strings/escapes so a bracket inside an event name cannot
/// derail the scan. Returns false when the document has no such array.
bool ExtractTraceEvents(const std::string& doc, std::string* inner) {
  const size_t key = doc.find("\"traceEvents\"");
  if (key == std::string::npos) return false;
  size_t open = doc.find('[', key);
  if (open == std::string::npos) return false;
  int depth = 0;
  bool in_string = false;
  for (size_t i = open; i < doc.size(); i++) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        i++;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      depth++;
    } else if (c == ']') {
      depth--;
      if (depth == 0) {
        *inner = doc.substr(open + 1, i - open - 1);
        return true;
      }
    }
  }
  return false;
}

/// Trims leading/trailing JSON whitespace.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// ---- minimal JSON parser ----------------------------------------------------
//
// Just enough JSON for Chrome trace documents (objects, arrays, strings
// with the common escapes, numbers, true/false/null). Recursive descent
// over a cursor; no external dependency is available in-container.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();  // trailing garbage is a parse failure
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    pos_++;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            // \uXXXX — tracer output never emits these, but accept and
            // pass the raw escape through rather than failing.
            if (pos_ + 4 > text_.size()) return false;
            out->append("\\u");
            out->append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::kBool;
      out->b = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::kBool;
      out->b = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::kNull;
      return Literal("null");
    }
    // number
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = strtod(start, &end);
    if (end == start) return false;
    out->kind = JsonValue::kNumber;
    out->num = v;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    pos_++;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    pos_++;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      pos_++;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string StitchChromeTraces(const std::vector<std::string>& docs) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& doc : docs) {
    std::string inner;
    if (!ExtractTraceEvents(doc, &inner)) continue;
    inner = Trim(inner);
    if (inner.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += inner;
  }
  out += "\n]}\n";
  return out;
}

Status ValidateChromeTrace(const std::string& doc, TraceValidation* out) {
  *out = TraceValidation{};
  JsonValue root;
  if (!JsonParser(doc).Parse(&root)) {
    return Status::Corruption("trace document is not valid JSON");
  }
  if (root.kind != JsonValue::kObject) {
    return Status::Corruption("trace document is not a JSON object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    return Status::Corruption("missing traceEvents array");
  }

  std::set<int> pids;
  std::map<std::pair<int, double>, double> last_ts;  // (pid, tid) -> ts
  for (const JsonValue& ev : events->arr) {
    if (ev.kind != JsonValue::kObject) {
      return Status::Corruption("traceEvents entry is not an object");
    }
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* name = ev.Find("name");
    const JsonValue* pid = ev.Find("pid");
    if (ph == nullptr || ph->kind != JsonValue::kString || name == nullptr ||
        name->kind != JsonValue::kString || pid == nullptr ||
        pid->kind != JsonValue::kNumber) {
      return Status::Corruption("event missing name/ph/pid");
    }
    pids.insert(static_cast<int>(pid->num));
    if (ph->str == "M") continue;  // metadata records carry no ts/tid

    const JsonValue* ts = ev.Find("ts");
    const JsonValue* tid = ev.Find("tid");
    if (ts == nullptr || ts->kind != JsonValue::kNumber || tid == nullptr ||
        tid->kind != JsonValue::kNumber) {
      return Status::Corruption("event '" + name->str + "' missing ts/tid");
    }
    if (ph->str == "X") {
      const JsonValue* dur = ev.Find("dur");
      if (dur == nullptr || dur->kind != JsonValue::kNumber) {
        return Status::Corruption("complete event '" + name->str +
                                  "' has no dur");
      }
    }
    const std::pair<int, double> track{static_cast<int>(pid->num), tid->num};
    auto [it, inserted] = last_ts.try_emplace(track, ts->num);
    if (!inserted) {
      if (ts->num < it->second) {
        return Status::Corruption("timestamps not monotonic on track of '" +
                                  name->str + "'");
      }
      it->second = ts->num;
    }
    out->event_count++;

    const JsonValue* args = ev.Find("args");
    if (args != nullptr && args->kind == JsonValue::kObject) {
      const JsonValue* trace = args->Find("trace");
      if (trace != nullptr && trace->kind == JsonValue::kString) {
        out->processes_by_trace[trace->str].insert(static_cast<int>(pid->num));
      }
    }
  }
  out->process_count = pids.size();
  return Status::OK();
}

}  // namespace obs
}  // namespace tardis
