// Process observability: the one metrics mechanism every subsystem feeds.
//
// A MetricsRegistry owns named, labeled metrics of three kinds:
//
//  * Counter — monotone event count. Increments are wait-free: each
//    thread lands on one of kShards cache-line-padded relaxed atomics,
//    so the commit hot path never takes a lock (and never bounces a
//    shared cache line between committing cores). Reads sum the shards.
//  * Gauge — a point-in-time level (atomic set/add). Gauges may instead
//    be *callback-backed*: the registry evaluates a function at collect
//    time, which is how DAG leaf/state counts are exported without
//    shadow bookkeeping.
//  * HistogramMetric — a util/Histogram behind a striped spinlock:
//    threads hash to one of kStripes (lock, histogram) pairs, and a
//    snapshot merges the stripes. Observation cost is one uncontended
//    spinlock acquire.
//
// Registration is idempotent: registering an existing (name, labels)
// pair of the same kind returns the existing metric, so a store reopened
// against a shared registry keeps counting in place. Callback metrics
// are tagged with an owner token and dropped via DropCallbacks() before
// the owner dies (the registry may outlive any one component).
//
// Collect() snapshots every metric into plain Samples; the exposition
// module renders those (Prometheus text, human table, run deltas).

#ifndef TARDIS_OBS_METRICS_H_
#define TARDIS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/spinlock.h"

namespace tardis {
namespace obs {

/// Sorted-insignificant list of (label name, label value) pairs. Kept as
/// a vector: metrics carry one or two labels, a map would be overkill.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter, sharded per thread group. Increment is a
/// single relaxed fetch_add on a cache line owned by (a few) threads.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  /// Threads are assigned shards round-robin on first use; the index is
  /// thread-local so a thread always hits the same cache line.
  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Point-in-time level. Single atomic: gauges are set rarely compared to
/// counter increments.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// util/Histogram behind a striped spinlock; Observe touches one stripe.
class HistogramMetric {
 public:
  void Observe(uint64_t value);
  /// Merged view of all stripes.
  Histogram Snapshot() const;

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    mutable SpinLock mu;
    Histogram h;
  };
  static size_t StripeIndex();

  Stripe stripes_[kStripes];
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One collected metric value — a plain snapshot with no liveness ties to
/// the registry, safe to ship across threads or diff against a later
/// collection.
struct Sample {
  std::string name;
  LabelSet labels;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;  ///< kCounter
  double gauge = 0;      ///< kGauge
  Histogram hist;        ///< kHistogram
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returned pointers stay valid for the registry's lifetime. Kind must
  /// match on re-registration (same name + labels); mismatches return
  /// nullptr rather than aliasing a metric of another type.
  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           LabelSet labels = {});
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       LabelSet labels = {});
  HistogramMetric* RegisterHistogram(const std::string& name,
                                     const std::string& help,
                                     LabelSet labels = {});

  /// Callback-backed metrics are evaluated inside Collect(); `fn` must be
  /// callable without locks the collector could already hold. `owner`
  /// groups registrations for DropCallbacks.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             std::function<double()> fn, LabelSet labels = {},
                             const void* owner = nullptr);
  void RegisterCallbackCounter(const std::string& name,
                               const std::string& help,
                               std::function<uint64_t()> fn,
                               LabelSet labels = {},
                               const void* owner = nullptr);
  /// Removes every callback metric registered under `owner`. Components
  /// whose registry may outlive them call this from their destructor.
  void DropCallbacks(const void* owner);

  /// Snapshots all metrics, sorted by (name, labels) for stable output.
  std::vector<Sample> Collect() const;

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> hist;
    std::function<double()> gauge_fn;      // callback gauge when set
    std::function<uint64_t()> counter_fn;  // callback counter when set
    const void* owner = nullptr;
  };

  Entry* FindLocked(const std::string& name, const LabelSet& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace tardis

#endif  // TARDIS_OBS_METRICS_H_
