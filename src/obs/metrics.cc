#include "obs/metrics.h"

#include <algorithm>

namespace tardis {
namespace obs {

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

size_t HistogramMetric::StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

void HistogramMetric::Observe(uint64_t value) {
  Stripe& s = stripes_[StripeIndex()];
  std::lock_guard<SpinLock> guard(s.mu);
  s.h.Add(value);
}

Histogram HistogramMetric::Snapshot() const {
  Histogram merged;
  for (const Stripe& s : stripes_) {
    std::lock_guard<SpinLock> guard(s.mu);
    merged.Merge(s.h);
  }
  return merged;
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(const std::string& name,
                                                    const LabelSet& labels) {
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          LabelSet labels) {
  std::lock_guard<std::mutex> guard(mu_);
  if (Entry* e = FindLocked(name, labels)) {
    return e->kind == MetricKind::kCounter ? e->counter.get() : nullptr;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = MetricKind::kCounter;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      LabelSet labels) {
  std::lock_guard<std::mutex> guard(mu_);
  if (Entry* e = FindLocked(name, labels)) {
    return e->kind == MetricKind::kGauge ? e->gauge.get() : nullptr;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = MetricKind::kGauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

HistogramMetric* MetricsRegistry::RegisterHistogram(const std::string& name,
                                                    const std::string& help,
                                                    LabelSet labels) {
  std::lock_guard<std::mutex> guard(mu_);
  if (Entry* e = FindLocked(name, labels)) {
    return e->kind == MetricKind::kHistogram ? e->hist.get() : nullptr;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = MetricKind::kHistogram;
  e->hist = std::make_unique<HistogramMetric>();
  HistogramMetric* out = e->hist.get();
  entries_.push_back(std::move(e));
  return out;
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            std::function<double()> fn,
                                            LabelSet labels,
                                            const void* owner) {
  std::lock_guard<std::mutex> guard(mu_);
  if (Entry* e = FindLocked(name, labels)) {
    // Re-registration rebinds: a reopened component takes over the slot.
    e->gauge_fn = std::move(fn);
    e->owner = owner;
    return;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = MetricKind::kGauge;
  e->gauge_fn = std::move(fn);
  e->owner = owner;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::RegisterCallbackCounter(const std::string& name,
                                              const std::string& help,
                                              std::function<uint64_t()> fn,
                                              LabelSet labels,
                                              const void* owner) {
  std::lock_guard<std::mutex> guard(mu_);
  if (Entry* e = FindLocked(name, labels)) {
    e->counter_fn = std::move(fn);
    e->owner = owner;
    return;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = MetricKind::kCounter;
  e->counter_fn = std::move(fn);
  e->owner = owner;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::DropCallbacks(const void* owner) {
  if (owner == nullptr) return;
  std::lock_guard<std::mutex> guard(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [owner](const std::unique_ptr<Entry>& e) {
                                  return e->owner == owner;
                                }),
                 entries_.end());
}

std::vector<Sample> MetricsRegistry::Collect() const {
  std::vector<Sample> out;
  {
    std::lock_guard<std::mutex> guard(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      Sample s;
      s.name = e->name;
      s.labels = e->labels;
      s.help = e->help;
      s.kind = e->kind;
      switch (e->kind) {
        case MetricKind::kCounter:
          s.counter = e->counter_fn ? e->counter_fn() : e->counter->Value();
          break;
        case MetricKind::kGauge:
          s.gauge = e->gauge_fn ? e->gauge_fn()
                                : static_cast<double>(e->gauge->Value());
          break;
        case MetricKind::kHistogram:
          s.hist = e->hist->Snapshot();
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

}  // namespace obs
}  // namespace tardis
