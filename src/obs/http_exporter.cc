#include "obs/http_exporter.h"

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "obs/exposition.h"

namespace tardis {
namespace obs {

MetricsHttpExporter::MetricsHttpExporter(uint16_t port,
                                         const MetricsRegistry* registry,
                                         const std::string& who)
    : registry_(registry) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = INADDR_ANY;
  addr.sin_port = htons(port);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd_, 8) != 0) {
    fprintf(stderr, "%s: metrics port %u: %s\n", who.c_str(), port,
            strerror(errno));
    close(fd_);
    fd_ = -1;
    return;
  }
  serving_ = true;
  thread_ = std::thread([this] { Serve(); });
}

MetricsHttpExporter::~MetricsHttpExporter() {
  stop_.store(true);
  if (fd_ >= 0) {
    // shutdown() unblocks the accept; some platforms need the close too.
    ::shutdown(fd_, SHUT_RDWR);
    close(fd_);
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpExporter::Serve() {
  while (!stop_.load()) {
    const int conn = accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed: shutting down
    }
    char buf[4096];
    (void)read(conn, buf, sizeof(buf));  // request line + headers, ignored
    const std::string body = RenderPrometheus(registry_->Collect());
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    (void)write(conn, resp.data(), resp.size());
    close(conn);
  }
}

}  // namespace obs
}  // namespace tardis
