// Minimal plaintext-metrics HTTP endpoint: accept, read (and ignore) the
// request, answer one 200 with the registry's current Prometheus
// rendering, close. Enough for `curl` and a Prometheus scrape config.
// One copy shared by tardisd and tardis-router (each used to carry its
// own).

#ifndef TARDIS_OBS_HTTP_EXPORTER_H_
#define TARDIS_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace tardis {
namespace obs {

class MetricsHttpExporter {
 public:
  /// Binds and starts serving immediately; check serving() for failure
  /// (the error is logged to stderr prefixed with `who`). `registry`
  /// must outlive the exporter.
  MetricsHttpExporter(uint16_t port, const MetricsRegistry* registry,
                      const std::string& who);
  ~MetricsHttpExporter();

  MetricsHttpExporter(const MetricsHttpExporter&) = delete;
  MetricsHttpExporter& operator=(const MetricsHttpExporter&) = delete;

  bool serving() const { return serving_; }

 private:
  void Serve();

  const MetricsRegistry* const registry_;
  int fd_ = -1;
  bool serving_ = false;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace tardis

#endif  // TARDIS_OBS_HTTP_EXPORTER_H_
