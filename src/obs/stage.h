// Per-request latency breakdown: where did one request's time go?
//
// Every interesting stage of the request path (queue wait, commit-state
// selection, WAL fsync, 2PC prepare RTT, decide apply, replication send)
// is wrapped in a StageTimer. Each timer always feeds the stage's
// histogram — `tardis_stage_micros{stage=...}`, the per-stage latency
// substrate the hot-path ROADMAP item needs, labeled by stage ONLY so
// `metrics cluster` can sum one family across every site — and, when the
// serving thread has a StageBreakdown bound (the tardisd worker binds one
// per request), also notes (stage, micros) into it so a `--slow-ms`
// overrun can log exactly where the time went. When the tracer is
// enabled the stage additionally becomes a trace event parented under
// the current span.
//
// Budget: the breakdown pointer is thread-local and checked only after
// the histogram Observe (which is the always-on cost, one uncontended
// spinlock — the same price the commit path already pays for
// commit_latency_us); the trace event costs the tracer's one relaxed
// load when disabled.

#ifndef TARDIS_OBS_STAGE_H_
#define TARDIS_OBS_STAGE_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace tardis {
namespace obs {

/// Fixed-size (stage, micros) record of one request. Stages repeat when
/// a request hits the same stage twice (e.g. one prepare RTT per 2PC
/// participant).
class StageBreakdown {
 public:
  static constexpr size_t kMaxStages = 16;

  void Note(const char* stage, uint64_t micros) {
    if (count_ < kMaxStages) {
      stages_[count_] = {stage, micros};
      count_++;
    }
  }
  void Reset() { count_ = 0; }
  size_t count() const { return count_; }

  /// "queue_wait=12us commit_select=340us wal_fsync=900us" — the slow-log
  /// payload.
  std::string Format() const;

 private:
  struct Entry {
    const char* stage;
    uint64_t micros;
  };
  Entry stages_[kMaxStages];
  size_t count_ = 0;
};

/// The breakdown bound to the calling thread (nullptr when none).
StageBreakdown* CurrentStageBreakdown();

/// Binds `b` as the thread's breakdown collector for the scope (resets it
/// on entry). The tardisd worker wraps each request in one of these; the
/// store/2PC/replication stages it calls into on the same thread land in
/// the bound breakdown.
class StageCollectorScope {
 public:
  explicit StageCollectorScope(StageBreakdown* b);
  ~StageCollectorScope();

  StageCollectorScope(const StageCollectorScope&) = delete;
  StageCollectorScope& operator=(const StageCollectorScope&) = delete;

 private:
  StageBreakdown* saved_;
};

/// Registers (idempotently) the shared per-stage histogram family for
/// one stage and returns its series. Components register their stages at
/// construction, not per request.
HistogramMetric* RegisterStageHistogram(MetricsRegistry* registry,
                                        const char* stage);

/// Times one stage: on destruction observes the elapsed micros into the
/// stage histogram, notes it into the thread's bound StageBreakdown (if
/// any), and records a trace event (if tracing is on). `hist` may be
/// null (stage then feeds only the breakdown/trace).
class StageTimer {
 public:
  StageTimer(HistogramMetric* hist, const char* stage)
      : hist_(hist), stage_(stage), start_us_(NowMicros()) {}
  ~StageTimer() {
    const uint64_t start = start_us_;
    const uint64_t dur = NowMicros() - start;
    if (hist_ != nullptr) hist_->Observe(dur);
    StageBreakdown* b = CurrentStageBreakdown();
    if (b != nullptr) b->Note(stage_, dur);
    TraceSpan::Emit("stage", stage_, start, dur);
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  HistogramMetric* const hist_;
  const char* const stage_;
  const uint64_t start_us_;
};

}  // namespace obs
}  // namespace tardis

#endif  // TARDIS_OBS_STAGE_H_
