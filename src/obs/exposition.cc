#include "obs/exposition.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

namespace tardis {
namespace obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// {a="1",b="2"} — empty string for no labels. `extra`, when non-null, is
/// appended as one more pair (used for quantile series).
std::string FormatLabels(const LabelSet& labels,
                         const std::pair<std::string, std::string>* extra =
                             nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out.push_back(',');
    out += extra->first + "=\"" + extra->second + "\"";
  }
  out.push_back('}');
  return out;
}

std::string FormatDouble(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "summary";
  }
  return "untyped";
}

std::string SeriesKey(const Sample& s) {
  return s.name + FormatLabels(s.labels);
}

}  // namespace

std::string RenderPrometheus(const std::vector<Sample>& samples) {
  std::string out;
  std::string last_name;
  for (const Sample& s : samples) {
    if (s.name != last_name) {
      // HELP/TYPE once per family even when several label sets follow.
      if (!s.help.empty()) out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " " + std::string(KindName(s.kind)) + "\n";
      last_name = s.name;
    }
    const std::string labels = FormatLabels(s.labels);
    char buf[64];
    switch (s.kind) {
      case MetricKind::kCounter:
        snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.counter);
        out += s.name + labels + buf;
        break;
      case MetricKind::kGauge:
        out += s.name + labels + " " + FormatDouble(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        for (double q : {0.5, 0.9, 0.99}) {
          const std::pair<std::string, std::string> extra{"quantile",
                                                          FormatDouble(q)};
          out += s.name + FormatLabels(s.labels, &extra) + " " +
                 FormatDouble(s.hist.Percentile(q)) + "\n";
        }
        const double sum = s.hist.mean() * static_cast<double>(s.hist.count());
        out += s.name + "_sum" + labels + " " + FormatDouble(sum) + "\n";
        snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.hist.count());
        out += s.name + "_count" + labels + buf;
        break;
      }
    }
  }
  return out;
}

std::string RenderTable(const std::vector<Sample>& samples) {
  std::string out;
  char line[256];
  for (const Sample& s : samples) {
    const std::string series = SeriesKey(s);
    switch (s.kind) {
      case MetricKind::kCounter:
        snprintf(line, sizeof(line), "%-52s %" PRIu64 "\n", series.c_str(),
                 s.counter);
        break;
      case MetricKind::kGauge:
        snprintf(line, sizeof(line), "%-52s %s\n", series.c_str(),
                 FormatDouble(s.gauge).c_str());
        break;
      case MetricKind::kHistogram:
        snprintf(line, sizeof(line),
                 "%-52s count=%" PRIu64 " mean=%.1f p50=%.0f p99=%.0f\n",
                 series.c_str(), s.hist.count(), s.hist.mean(),
                 s.hist.Percentile(0.5), s.hist.Percentile(0.99));
        break;
    }
    out += line;
  }
  return out;
}

std::string RenderDelta(const std::vector<Sample>& before,
                        const std::vector<Sample>& after) {
  std::map<std::string, const Sample*> prior;
  for (const Sample& s : before) prior[SeriesKey(s)] = &s;

  std::string out;
  char line[256];
  for (const Sample& s : after) {
    const auto it = prior.find(SeriesKey(s));
    const Sample* b = it == prior.end() ? nullptr : it->second;
    switch (s.kind) {
      case MetricKind::kCounter: {
        const uint64_t base = b != nullptr ? b->counter : 0;
        if (s.counter <= base) continue;
        snprintf(line, sizeof(line), "%s +%" PRIu64 "\n",
                 SeriesKey(s).c_str(), s.counter - base);
        out += line;
        break;
      }
      case MetricKind::kGauge: {
        const double base = b != nullptr ? b->gauge : 0;
        if (s.gauge == base) continue;
        snprintf(line, sizeof(line), "%s %s -> %s\n", SeriesKey(s).c_str(),
                 FormatDouble(base).c_str(), FormatDouble(s.gauge).c_str());
        out += line;
        break;
      }
      case MetricKind::kHistogram: {
        const uint64_t base = b != nullptr ? b->hist.count() : 0;
        if (s.hist.count() <= base) continue;
        // The window's mean is derivable from the sums; quantiles are
        // cumulative (bucket subtraction is not worth the noise here).
        const double sum_after =
            s.hist.mean() * static_cast<double>(s.hist.count());
        const double sum_base =
            b != nullptr ? b->hist.mean() * static_cast<double>(base) : 0;
        const uint64_t n = s.hist.count() - base;
        snprintf(line, sizeof(line), "%s +%" PRIu64 " samples mean=%.1f\n",
                 SeriesKey(s).c_str(), n,
                 (sum_after - sum_base) / static_cast<double>(n));
        out += line;
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace tardis
