#include "obs/exposition.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace tardis {
namespace obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// {a="1",b="2"} — empty string for no labels. `extra`, when non-null, is
/// appended as one more pair (used for quantile series).
std::string FormatLabels(const LabelSet& labels,
                         const std::pair<std::string, std::string>* extra =
                             nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out.push_back(',');
    out += extra->first + "=\"" + extra->second + "\"";
  }
  out.push_back('}');
  return out;
}

std::string FormatDouble(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "summary";
  }
  return "untyped";
}

std::string SeriesKey(const Sample& s) {
  return s.name + FormatLabels(s.labels);
}

}  // namespace

std::string RenderPrometheus(const std::vector<Sample>& samples) {
  std::string out;
  std::string last_name;
  for (const Sample& s : samples) {
    if (s.name != last_name) {
      // HELP/TYPE once per family even when several label sets follow.
      if (!s.help.empty()) out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " " + std::string(KindName(s.kind)) + "\n";
      last_name = s.name;
    }
    const std::string labels = FormatLabels(s.labels);
    char buf[64];
    switch (s.kind) {
      case MetricKind::kCounter:
        snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.counter);
        out += s.name + labels + buf;
        break;
      case MetricKind::kGauge:
        out += s.name + labels + " " + FormatDouble(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        for (double q : {0.5, 0.9, 0.99}) {
          const std::pair<std::string, std::string> extra{"quantile",
                                                          FormatDouble(q)};
          out += s.name + FormatLabels(s.labels, &extra) + " " +
                 FormatDouble(s.hist.Percentile(q)) + "\n";
        }
        // Native cumulative buckets alongside the quantiles: quantiles
        // cannot be aggregated across sites, _bucket series can (see
        // MergePrometheus / `metrics cluster`). Only buckets that change
        // the cumulative count are emitted — 154 log buckets per series
        // would swamp the exposition — plus the mandatory +Inf bucket
        // (the last bucket limit is UINT64_MAX, i.e. +Inf).
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::bucket_count(); i++) {
          const uint64_t in_bucket = s.hist.bucket_value(i);
          if (in_bucket == 0) continue;
          cumulative += in_bucket;
          if (i + 1 == Histogram::bucket_count()) break;  // folded into +Inf
          const std::pair<std::string, std::string> le{
              "le", FormatDouble(static_cast<double>(Histogram::BucketLimit(i)))};
          out += s.name + "_bucket" + FormatLabels(s.labels, &le) + " " +
                 FormatDouble(static_cast<double>(cumulative)) + "\n";
        }
        const std::pair<std::string, std::string> inf{"le", "+Inf"};
        snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.hist.count());
        out += s.name + "_bucket" + FormatLabels(s.labels, &inf) + buf;
        const double sum = s.hist.mean() * static_cast<double>(s.hist.count());
        out += s.name + "_sum" + labels + " " + FormatDouble(sum) + "\n";
        out += s.name + "_count" + labels + buf;
        break;
      }
    }
  }
  return out;
}

std::string RenderTable(const std::vector<Sample>& samples) {
  std::string out;
  char line[256];
  for (const Sample& s : samples) {
    const std::string series = SeriesKey(s);
    switch (s.kind) {
      case MetricKind::kCounter:
        snprintf(line, sizeof(line), "%-52s %" PRIu64 "\n", series.c_str(),
                 s.counter);
        break;
      case MetricKind::kGauge:
        snprintf(line, sizeof(line), "%-52s %s\n", series.c_str(),
                 FormatDouble(s.gauge).c_str());
        break;
      case MetricKind::kHistogram:
        snprintf(line, sizeof(line),
                 "%-52s count=%" PRIu64 " mean=%.1f p50=%.0f p99=%.0f\n",
                 series.c_str(), s.hist.count(), s.hist.mean(),
                 s.hist.Percentile(0.5), s.hist.Percentile(0.99));
        break;
    }
    out += line;
  }
  return out;
}

std::string RenderDelta(const std::vector<Sample>& before,
                        const std::vector<Sample>& after) {
  std::map<std::string, const Sample*> prior;
  for (const Sample& s : before) prior[SeriesKey(s)] = &s;

  std::string out;
  char line[256];
  for (const Sample& s : after) {
    const auto it = prior.find(SeriesKey(s));
    const Sample* b = it == prior.end() ? nullptr : it->second;
    switch (s.kind) {
      case MetricKind::kCounter: {
        const uint64_t base = b != nullptr ? b->counter : 0;
        if (s.counter <= base) continue;
        snprintf(line, sizeof(line), "%s +%" PRIu64 "\n",
                 SeriesKey(s).c_str(), s.counter - base);
        out += line;
        break;
      }
      case MetricKind::kGauge: {
        const double base = b != nullptr ? b->gauge : 0;
        if (s.gauge == base) continue;
        snprintf(line, sizeof(line), "%s %s -> %s\n", SeriesKey(s).c_str(),
                 FormatDouble(base).c_str(), FormatDouble(s.gauge).c_str());
        out += line;
        break;
      }
      case MetricKind::kHistogram: {
        const uint64_t base = b != nullptr ? b->hist.count() : 0;
        if (s.hist.count() <= base) continue;
        // The window's mean is derivable from the sums; quantiles are
        // cumulative (bucket subtraction is not worth the noise here).
        const double sum_after =
            s.hist.mean() * static_cast<double>(s.hist.count());
        const double sum_base =
            b != nullptr ? b->hist.mean() * static_cast<double>(base) : 0;
        const uint64_t n = s.hist.count() - base;
        snprintf(line, sizeof(line), "%s +%" PRIu64 " samples mean=%.1f\n",
                 SeriesKey(s).c_str(), n,
                 (sum_after - sum_base) / static_cast<double>(n));
        out += line;
        break;
      }
    }
  }
  return out;
}

std::string MergePrometheus(const std::vector<std::string>& expositions) {
  // Series identity is the full "name{labels}" prefix of a sample line;
  // values are summed as doubles (every TARDiS series is additive once
  // quantile summaries are excluded). First appearance fixes both the
  // family order and each family's series order, so merging one
  // exposition with itself doubles every value but changes no line.
  struct Family {
    std::vector<std::string> meta;   ///< HELP/TYPE lines, first seen
    std::vector<std::string> order;  ///< series keys, first seen
    std::map<std::string, double> series;
  };
  std::vector<std::string> family_order;
  std::map<std::string, Family> families;

  auto family_of = [](const std::string& series_key) {
    // name{...} -> name; strip _bucket/_sum/_count so a histogram's
    // series group under one family like RenderPrometheus emits them.
    std::string name = series_key.substr(0, series_key.find('{'));
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::string(suffix).size();
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
        return name.substr(0, name.size() - n);
      }
    }
    return name;
  };

  for (const std::string& text : expositions) {
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // "# HELP <name> ..." / "# TYPE <name> ..." — keyed by name.
        const size_t kind_end = line.find(' ', 2);
        if (kind_end == std::string::npos) continue;
        size_t name_end = line.find(' ', kind_end + 1);
        if (name_end == std::string::npos) name_end = line.size();
        const std::string name =
            line.substr(kind_end + 1, name_end - kind_end - 1);
        Family& fam = families[name];
        if (fam.meta.empty() && fam.order.empty()) family_order.push_back(name);
        // Keep the first exposition's HELP/TYPE only.
        bool have = false;
        for (const std::string& m : fam.meta) {
          if (m.compare(0, kind_end, line, 0, kind_end) == 0) have = true;
        }
        if (!have) fam.meta.push_back(line);
        continue;
      }
      // Sample line: "<name>{labels} <value>" (no timestamps emitted here).
      const size_t sep = line.rfind(' ');
      if (sep == std::string::npos) continue;
      const std::string key = line.substr(0, sep);
      if (key.find("quantile=\"") != std::string::npos) continue;
      const std::string value_str = line.substr(sep + 1);
      char* endp = nullptr;
      const double value = strtod(value_str.c_str(), &endp);
      if (endp == value_str.c_str()) continue;
      const std::string fam_name = family_of(key);
      Family& fam = families[fam_name];
      if (fam.meta.empty() && fam.order.empty())
        family_order.push_back(fam_name);
      auto [it, inserted] = fam.series.try_emplace(key, 0.0);
      if (inserted) fam.order.push_back(key);
      it->second += value;
    }
  }

  std::string out;
  for (const std::string& fam_name : family_order) {
    const Family& fam = families[fam_name];
    for (const std::string& m : fam.meta) out += m + "\n";
    for (const std::string& key : fam.order) {
      out += key + " " + FormatDouble(fam.series.at(key)) + "\n";
    }
  }
  return out;
}

}  // namespace obs
}  // namespace tardis
