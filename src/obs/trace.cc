#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

namespace tardis {
namespace obs {

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
                                         // hold ring pointers at exit
  return *tracer;
}

Tracer::Ring* Tracer::ThreadRing() {
  thread_local std::shared_ptr<Ring> ring;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> guard(mu_);
    static uint32_t next_tid = 1;
    ring = std::make_shared<Ring>(next_tid++, capacity_);
    rings_.push_back(ring);
  }
  return ring.get();
}

void Tracer::Enable(size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  {
    std::lock_guard<std::mutex> guard(mu_);
    capacity_ = events_per_thread;
    for (const auto& ring : rings_) {
      std::lock_guard<SpinLock> rg(ring->mu);
      ring->events.assign(events_per_thread, TraceEvent{});
      ring->total = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(const char* cat, const char* name, char phase,
                    uint64_t ts_us, uint64_t dur_us) {
  if (!enabled()) return;
  Ring* ring = ThreadRing();
  std::lock_guard<SpinLock> guard(ring->mu);
  TraceEvent& slot = ring->events[ring->total % ring->events.size()];
  slot.cat = cat;
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.phase = phase;
  ring->total++;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<SpinLock> rg(ring->mu);
    ring->total = 0;
  }
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<SpinLock> rg(ring->mu);
    n += std::min<uint64_t>(ring->total, ring->events.size());
  }
  return n;
}

uint64_t Tracer::TotalRecorded() const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<SpinLock> rg(ring->mu);
    n += ring->total;
  }
  return n;
}

std::string Tracer::DumpChromeTrace() const {
  struct Tagged {
    TraceEvent ev;
    uint32_t tid;
  };
  std::vector<Tagged> events;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<SpinLock> rg(ring->mu);
      const size_t cap = ring->events.size();
      const size_t kept = std::min<uint64_t>(ring->total, cap);
      // Oldest retained event first: after a wrap that is slot total%cap.
      const size_t start = ring->total > cap ? ring->total % cap : 0;
      for (size_t i = 0; i < kept; i++) {
        events.push_back({ring->events[(start + i) % cap], ring->tid});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Tagged& a, const Tagged& b) {
              return a.ev.ts_us < b.ev.ts_us;
            });

  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  const int pid = static_cast<int>(getpid());
  bool first = true;
  for (const Tagged& t : events) {
    if (!first) out += ",\n";
    first = false;
    if (t.ev.phase == 'X') {
      snprintf(buf, sizeof(buf),
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
               "\"dur\":%llu,\"pid\":%d,\"tid\":%u}",
               t.ev.name, t.ev.cat,
               static_cast<unsigned long long>(t.ev.ts_us),
               static_cast<unsigned long long>(t.ev.dur_us), pid, t.tid);
    } else {
      snprintf(buf, sizeof(buf),
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
               "\"ts\":%llu,\"pid\":%d,\"tid\":%u}",
               t.ev.name, t.ev.cat,
               static_cast<unsigned long long>(t.ev.ts_us), pid, t.tid);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace tardis
