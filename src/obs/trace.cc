#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <random>

#include "util/random.h"

namespace tardis {
namespace obs {

namespace {

thread_local TraceContext tls_ctx;

/// Per-thread id generator. Seeded from std::random_device once per
/// thread — ids must not collide across the many processes of a grid,
/// so a fixed or clock-only seed is not enough.
uint64_t NextId() {
  thread_local Random rng = [] {
    std::random_device rd;
    const uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
                          NowNanos() * 0x9e3779b97f4a7c15ULL;
    return Random(seed);
  }();
  uint64_t id = rng.Next();
  while (id == 0) id = rng.Next();
  return id;
}

}  // namespace

uint64_t NewTraceId() { return NextId(); }
uint64_t NewSpanId() { return NextId(); }

const TraceContext& CurrentTraceContext() { return tls_ctx; }

TraceContextScope::TraceContextScope(const TraceContext& ctx) {
  if (ctx.active() || tls_ctx.active()) {
    saved_ = tls_ctx;
    tls_ctx = ctx;
    bound_ = true;
  }
}

TraceContextScope::~TraceContextScope() {
  if (bound_) tls_ctx = saved_;
}

TraceSpan::TraceSpan(const char* cat, const char* name)
    : armed_(Tracer::Get().enabled()), cat_(cat), name_(name) {
  if (!armed_) return;
  start_us_ = NowMicros();
  if (tls_ctx.active()) {
    saved_ = tls_ctx;
    parent_span_ = tls_ctx.span_id;
    ctx_ = tls_ctx;
    ctx_.span_id = NewSpanId();
    tls_ctx = ctx_;
    bound_ = true;
  }
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  if (bound_) tls_ctx = saved_;
  Tracer::Get().Record(cat_, name_, 'X', start_us_, NowMicros() - start_us_,
                       ctx_.trace_id, ctx_.span_id, parent_span_);
}

void TraceSpan::Emit(const char* cat, const char* name, uint64_t start_us,
                     uint64_t dur_us) {
  Tracer& tracer = Tracer::Get();
  if (!tracer.enabled()) return;
  // An after-the-fact stage is a leaf: child of the current span, no id
  // of its own worth propagating.
  const TraceContext& ctx = tls_ctx;
  tracer.Record(cat, name, 'X', start_us, dur_us, ctx.trace_id,
                ctx.active() ? NewSpanId() : 0, ctx.span_id);
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
                                         // hold ring pointers at exit
  return *tracer;
}

Tracer::Ring* Tracer::ThreadRing() {
  thread_local std::shared_ptr<Ring> ring;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> guard(mu_);
    static uint32_t next_tid = 1;
    ring = std::make_shared<Ring>(next_tid++, capacity_);
    rings_.push_back(ring);
  }
  return ring.get();
}

void Tracer::Enable(size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  {
    std::lock_guard<std::mutex> guard(mu_);
    capacity_ = events_per_thread;
    for (const auto& ring : rings_) {
      std::lock_guard<SpinLock> rg(ring->mu);
      ring->events.assign(events_per_thread, TraceEvent{});
      ring->total = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::SetProcessLabel(const std::string& label) {
  std::lock_guard<std::mutex> guard(mu_);
  process_label_ = label;
}

void Tracer::Record(const char* cat, const char* name, char phase,
                    uint64_t ts_us, uint64_t dur_us, uint64_t trace_id,
                    uint64_t span_id, uint64_t parent_span) {
  if (!enabled()) return;
  Ring* ring = ThreadRing();
  std::lock_guard<SpinLock> guard(ring->mu);
  TraceEvent& slot = ring->events[ring->total % ring->events.size()];
  slot.cat = cat;
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.phase = phase;
  slot.trace_id = trace_id;
  slot.span_id = span_id;
  slot.parent_span = parent_span;
  ring->total++;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<SpinLock> rg(ring->mu);
    ring->total = 0;
  }
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<SpinLock> rg(ring->mu);
    n += std::min<uint64_t>(ring->total, ring->events.size());
  }
  return n;
}

uint64_t Tracer::TotalRecorded() const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<SpinLock> rg(ring->mu);
    n += ring->total;
  }
  return n;
}

std::string Tracer::DumpChromeTrace() const {
  struct Tagged {
    TraceEvent ev;
    uint32_t tid;
  };
  std::vector<Tagged> events;
  std::string label;
  {
    std::lock_guard<std::mutex> guard(mu_);
    label = process_label_;
    for (const auto& ring : rings_) {
      std::lock_guard<SpinLock> rg(ring->mu);
      const size_t cap = ring->events.size();
      const size_t kept = std::min<uint64_t>(ring->total, cap);
      // Oldest retained event first: after a wrap that is slot total%cap.
      const size_t start = ring->total > cap ? ring->total % cap : 0;
      for (size_t i = 0; i < kept; i++) {
        events.push_back({ring->events[(start + i) % cap], ring->tid});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Tagged& a, const Tagged& b) {
              return a.ev.ts_us < b.ev.ts_us;
            });

  std::string out = "{\"traceEvents\":[\n";
  char buf[384];
  const int pid = static_cast<int>(getpid());
  bool first = true;
  if (!label.empty()) {
    // Metadata record naming this process in merged/stitched views. The
    // label comes from --site/--partition flags (no quotes to escape).
    snprintf(buf, sizeof(buf),
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
             "\"args\":{\"name\":\"%s\"}}",
             pid, label.c_str());
    out += buf;
    first = false;
  }
  for (const Tagged& t : events) {
    if (!first) out += ",\n";
    first = false;
    char args[160];
    if (t.ev.trace_id != 0) {
      snprintf(args, sizeof(args),
               ",\"args\":{\"trace\":\"%016llx\",\"span\":\"%016llx\","
               "\"parent\":\"%016llx\"}",
               static_cast<unsigned long long>(t.ev.trace_id),
               static_cast<unsigned long long>(t.ev.span_id),
               static_cast<unsigned long long>(t.ev.parent_span));
    } else {
      args[0] = '\0';
    }
    if (t.ev.phase == 'X') {
      snprintf(buf, sizeof(buf),
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
               "\"dur\":%llu,\"pid\":%d,\"tid\":%u%s}",
               t.ev.name, t.ev.cat,
               static_cast<unsigned long long>(t.ev.ts_us),
               static_cast<unsigned long long>(t.ev.dur_us), pid, t.tid,
               args);
    } else {
      snprintf(buf, sizeof(buf),
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
               "\"ts\":%llu,\"pid\":%d,\"tid\":%u%s}",
               t.ev.name, t.ev.cat,
               static_cast<unsigned long long>(t.ev.ts_us), pid, t.tid, args);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

// ---- line-protocol header ---------------------------------------------------

std::string FormatTraceHeader(const TraceContext& ctx) {
  char buf[64];
  snprintf(buf, sizeof(buf), "*T%llx/%llx/%u",
           static_cast<unsigned long long>(ctx.trace_id),
           static_cast<unsigned long long>(ctx.span_id),
           ctx.sampled ? 1u : 0u);
  return buf;
}

namespace {

/// Parses [begin,end) as lowercase/uppercase hex into *out. Rejects
/// empty input and anything longer than 16 digits.
bool ParseHex(const char* begin, const char* end, uint64_t* out) {
  if (begin == end || end - begin > 16) return false;
  uint64_t v = 0;
  for (const char* p = begin; p != end; p++) {
    char c = *p;
    uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

}  // namespace

bool ParseTraceHeader(const std::string& token, TraceContext* ctx) {
  if (token.size() < 3 || token[0] != '*' || token[1] != 'T') return false;
  const size_t slash1 = token.find('/', 2);
  if (slash1 == std::string::npos) return false;
  const size_t slash2 = token.find('/', slash1 + 1);
  if (slash2 == std::string::npos) return false;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t flags = 0;
  const char* s = token.data();
  if (!ParseHex(s + 2, s + slash1, &trace_id)) return false;
  if (!ParseHex(s + slash1 + 1, s + slash2, &span_id)) return false;
  if (!ParseHex(s + slash2 + 1, s + token.size(), &flags)) return false;
  if (trace_id == 0) return false;
  ctx->trace_id = trace_id;
  ctx->span_id = span_id;
  ctx->sampled = (flags & 1) != 0;
  return true;
}

bool StripTraceHeader(std::string* line, TraceContext* ctx) {
  size_t start = line->find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  if (line->compare(start, 2, "*T") != 0) return false;
  size_t end = line->find_first_of(" \t", start);
  if (end == std::string::npos) end = line->size();
  const std::string token = line->substr(start, end - start);
  const bool parsed = ParseTraceHeader(token, ctx);
  size_t rest = line->find_first_not_of(" \t", end);
  if (rest == std::string::npos) rest = line->size();
  line->erase(0, rest);
  return parsed;
}

}  // namespace obs
}  // namespace tardis
