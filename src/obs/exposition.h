// Rendering of registry snapshots:
//
//  * RenderPrometheus — Prometheus text exposition format (counters and
//    gauges verbatim; histograms as summaries with quantile labels plus
//    _sum/_count series), served by tardisd's `metrics` command and its
//    --metrics-port endpoint.
//  * RenderTable — compact aligned human table, the `stats` line-command
//    output.
//  * RenderDelta — what changed between two Collect() snapshots: counter
//    increases, histogram count/mean over the window, gauge movements.
//    The bench driver reports this per measured run.
//
// All three are pure functions of Sample vectors — no registry locks held
// while formatting.

#ifndef TARDIS_OBS_EXPOSITION_H_
#define TARDIS_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tardis {
namespace obs {

std::string RenderPrometheus(const std::vector<Sample>& samples);

std::string RenderTable(const std::vector<Sample>& samples);

std::string RenderDelta(const std::vector<Sample>& before,
                        const std::vector<Sample>& after);

/// Merges several Prometheus text expositions (each a RenderPrometheus
/// output, e.g. one per partition) into one: identical series are summed
/// — counters, gauges, and histogram _bucket/_sum/_count series are all
/// additive across sites — while quantile-labeled summary series are
/// dropped (quantiles cannot be aggregated; the merged _bucket series
/// carry the distribution instead). Family order and HELP/TYPE lines
/// follow first appearance. Serves the router's `metrics cluster`.
std::string MergePrometheus(const std::vector<std::string>& expositions);

}  // namespace obs
}  // namespace tardis

#endif  // TARDIS_OBS_EXPOSITION_H_
