// Branch-lifecycle event tracer: fixed-size per-thread ring buffers of
// timestamped events, dumpable as Chrome trace_event JSON (load the dump
// in chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints, in order:
//  1. Disabled cost ~0 — one relaxed atomic load per instrumentation
//     site. Instrumentation stays compiled into release builds.
//  2. Enabled cost is bounded — each thread writes its own ring (one
//     uncontended spinlock + a slot store), and the ring overwrites the
//     oldest events instead of growing, so a tracing session can span an
//     arbitrarily long run and keep the most recent window.
//  3. Dump-anytime — rings are owned jointly by the tracer and the
//     thread (shared_ptr), so a dump after a worker thread exits still
//     sees its events.
//
// Event names/categories are `const char*` and must be string literals
// (the ring stores the pointer, not a copy).
//
// Usage:
//   obs::Tracer::Get().Enable();
//   ... run traffic; hot paths hit TARDIS_TRACE_SCOPE("txn", "commit") ...
//   std::string json = obs::Tracer::Get().DumpChromeTrace();

#ifndef TARDIS_OBS_TRACE_H_
#define TARDIS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/spinlock.h"

namespace tardis {
namespace obs {

struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  uint64_t ts_us = 0;   ///< monotonic microseconds (NowMicros origin)
  uint64_t dur_us = 0;  ///< complete ('X') events only
  char phase = 'X';     ///< 'X' complete, 'i' instant
};

class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 8192;

  /// The process-wide tracer.
  static Tracer& Get();

  /// Clears all rings, (re)sizes them, and starts recording.
  void Enable(size_t events_per_thread = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends to the calling thread's ring (wrapping). No-op if disabled.
  void Record(const char* cat, const char* name, char phase, uint64_t ts_us,
              uint64_t dur_us);

  void RecordInstant(const char* cat, const char* name) {
    if (enabled()) Record(cat, name, 'i', NowMicros(), 0);
  }

  /// All retained events from every ring, as Chrome trace_event JSON.
  std::string DumpChromeTrace() const;

  /// Events currently retained across all rings (post-wrap: capacity-capped).
  size_t EventCount() const;
  /// Events ever recorded since the last Enable/Clear (pre-wrap).
  uint64_t TotalRecorded() const;
  void Clear();

 private:
  struct Ring {
    Ring(uint32_t tid_in, size_t capacity) : tid(tid_in), events(capacity) {}
    mutable SpinLock mu;
    const uint32_t tid;
    std::vector<TraceEvent> events;
    uint64_t total = 0;  ///< events ever written; slot = total % size
  };

  Tracer() = default;
  Ring* ThreadRing();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards rings_ registration and capacity_
  std::vector<std::shared_ptr<Ring>> rings_;
  size_t capacity_ = kDefaultRingCapacity;
};

/// Records one complete ('X') event spanning its lifetime. Arming is
/// decided at construction so an Enable() mid-scope never records a
/// half-timed event.
class TraceScope {
 public:
  TraceScope(const char* cat, const char* name)
      : armed_(Tracer::Get().enabled()), cat_(cat), name_(name) {
    if (armed_) start_us_ = NowMicros();
  }
  ~TraceScope() {
    if (armed_) {
      Tracer::Get().Record(cat_, name_, 'X', start_us_,
                           NowMicros() - start_us_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const bool armed_;
  const char* const cat_;
  const char* const name_;
  uint64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace tardis

#define TARDIS_TRACE_CAT_(a, b) a##b
#define TARDIS_TRACE_NAME_(a, b) TARDIS_TRACE_CAT_(a, b)

/// Times the rest of the enclosing scope as one trace event.
#define TARDIS_TRACE_SCOPE(cat, name) \
  ::tardis::obs::TraceScope TARDIS_TRACE_NAME_(_tardis_trace_, \
                                               __COUNTER__)(cat, name)

/// Zero-duration marker event.
#define TARDIS_TRACE_INSTANT(cat, name) \
  ::tardis::obs::Tracer::Get().RecordInstant(cat, name)

#endif  // TARDIS_OBS_TRACE_H_
