// Branch-lifecycle and request tracer: fixed-size per-thread ring buffers
// of timestamped events, dumpable as Chrome trace_event JSON (load the
// dump in chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints, in order:
//  1. Disabled cost ~0 — one relaxed atomic load per instrumentation
//     site. Instrumentation stays compiled into release builds.
//  2. Enabled cost is bounded — each thread writes its own ring (one
//     uncontended spinlock + a slot store), and the ring overwrites the
//     oldest events instead of growing, so a tracing session can span an
//     arbitrarily long run and keep the most recent window.
//  3. Dump-anytime — rings are owned jointly by the tracer and the
//     thread (shared_ptr), so a dump after a worker thread exits still
//     sees its events.
//
// Event names/categories are `const char*` and must be string literals
// (the ring stores the pointer, not a copy).
//
// Distributed tracing (DESIGN.md §7): a TraceContext carries a cluster-
// wide trace id, the current span id, and the sampled bit. It is bound
// thread-locally (TraceContextScope), crossed between processes as an
// optional line-protocol header token ("*T<trace>/<span>/<flags>",
// Format/Strip below) or as fields on the coordination wire frames, and
// every TraceSpan recorded while a context is bound tags its event with
// (trace_id, span_id, parent_span) so rings collected from several
// processes can be stitched into one trace keyed by trace_id.
//
// Usage:
//   obs::Tracer::Get().Enable();
//   ... run traffic; hot paths hit TARDIS_TRACE_SPAN("txn", "commit") ...
//   std::string json = obs::Tracer::Get().DumpChromeTrace();

#ifndef TARDIS_OBS_TRACE_H_
#define TARDIS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/spinlock.h"

namespace tardis {
namespace obs {

// ---- distributed trace context ---------------------------------------------

/// The per-request identity that crosses process boundaries. trace_id 0
/// means "no trace": spans recorded without a bound context are plain
/// local events.
struct TraceContext {
  uint64_t trace_id = 0;  ///< one id for the whole distributed request
  uint64_t span_id = 0;   ///< the innermost open span (0 at the root)
  bool sampled = false;   ///< propagated sampling decision

  bool active() const { return trace_id != 0; }
};

/// Fresh non-zero random ids (per-thread xorshift; no locks).
uint64_t NewTraceId();
uint64_t NewSpanId();

/// The calling thread's bound context ({0,0,false} when none).
const TraceContext& CurrentTraceContext();

/// RAII binder: installs `ctx` as the thread's current context and
/// restores the previous one on destruction. Binding an inactive context
/// over an inactive one is free (no thread-local store).
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
  bool bound_ = false;
};

// ---- events and the tracer --------------------------------------------------

struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  uint64_t ts_us = 0;   ///< monotonic microseconds (NowMicros origin)
  uint64_t dur_us = 0;  ///< complete ('X') events only
  char phase = 'X';     ///< 'X' complete, 'i' instant
  // Distributed-trace tags; all zero for events outside any trace.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
};

class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 8192;

  /// The process-wide tracer.
  static Tracer& Get();

  /// Clears all rings, (re)sizes them, and starts recording.
  void Enable(size_t events_per_thread = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends to the calling thread's ring (wrapping). No-op if disabled.
  void Record(const char* cat, const char* name, char phase, uint64_t ts_us,
              uint64_t dur_us, uint64_t trace_id = 0, uint64_t span_id = 0,
              uint64_t parent_span = 0);

  void RecordInstant(const char* cat, const char* name) {
    if (enabled()) Record(cat, name, 'i', NowMicros(), 0);
  }

  /// Names this process in stitched traces: DumpChromeTrace emits a
  /// process_name metadata record when a label is set (e.g. "tardisd-p0-
  /// site1", "tardis-router").
  void SetProcessLabel(const std::string& label);

  /// All retained events from every ring, as Chrome trace_event JSON.
  /// Events inside a distributed trace carry args {trace, span, parent}
  /// as zero-padded hex strings.
  std::string DumpChromeTrace() const;

  /// Events currently retained across all rings (post-wrap: capacity-capped).
  size_t EventCount() const;
  /// Events ever recorded since the last Enable/Clear (pre-wrap).
  uint64_t TotalRecorded() const;
  void Clear();

 private:
  struct Ring {
    Ring(uint32_t tid_in, size_t capacity) : tid(tid_in), events(capacity) {}
    mutable SpinLock mu;
    const uint32_t tid;
    std::vector<TraceEvent> events;
    uint64_t total = 0;  ///< events ever written; slot = total % size
  };

  Tracer() = default;
  Ring* ThreadRing();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards rings_ registration, capacity_, label
  std::vector<std::shared_ptr<Ring>> rings_;
  size_t capacity_ = kDefaultRingCapacity;
  std::string process_label_;
};

/// Records one complete ('X') event spanning its lifetime. Arming is
/// decided at construction so an Enable() mid-scope never records a
/// half-timed event.
class TraceScope {
 public:
  TraceScope(const char* cat, const char* name)
      : armed_(Tracer::Get().enabled()), cat_(cat), name_(name) {
    if (armed_) start_us_ = NowMicros();
  }
  ~TraceScope() {
    if (armed_) {
      Tracer::Get().Record(cat_, name_, 'X', start_us_,
                           NowMicros() - start_us_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const bool armed_;
  const char* const cat_;
  const char* const name_;
  uint64_t start_us_ = 0;
};

/// TraceScope plus distributed-trace parenting: when a TraceContext is
/// bound, the span allocates a span id, becomes the thread's current
/// context for its lifetime (so nested spans and cross-process calls see
/// it as their parent), and tags its event with the trace/span/parent
/// ids. Without a bound context it degrades to a plain TraceScope. The
/// disabled cost is the single relaxed enabled() load — the thread-local
/// context is not even read.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// The context this span established ({0,...} when unarmed/unbound);
  /// what a caller attaches to an outgoing wire frame.
  const TraceContext& context() const { return ctx_; }

  /// Records one already-measured complete event as a child of the
  /// current context (used for stages timed before a span could be
  /// opened, e.g. queue wait measured at dequeue).
  static void Emit(const char* cat, const char* name, uint64_t start_us,
                   uint64_t dur_us);

 private:
  const bool armed_;
  bool bound_ = false;
  const char* const cat_;
  const char* const name_;
  uint64_t start_us_ = 0;
  uint64_t parent_span_ = 0;
  TraceContext ctx_;
  TraceContext saved_;
};

// ---- line-protocol header ---------------------------------------------------

/// "*T<trace_hex>/<span_hex>/<flags>" — the optional first token of a
/// tardisd/router line-protocol request. flags bit 0 = sampled.
std::string FormatTraceHeader(const TraceContext& ctx);

/// Parses one header token (no surrounding whitespace). Returns false —
/// leaving *ctx untouched — unless the token is a well-formed header with
/// a non-zero trace id.
bool ParseTraceHeader(const std::string& token, TraceContext* ctx);

/// Removes a leading header token (anything starting "*T", valid or not)
/// plus the whitespace after it from *line. Returns true and fills *ctx
/// only when the token parsed; a corrupt header is stripped and ignored
/// so the command still executes, just untraced.
bool StripTraceHeader(std::string* line, TraceContext* ctx);

}  // namespace obs
}  // namespace tardis

#define TARDIS_TRACE_CAT_(a, b) a##b
#define TARDIS_TRACE_NAME_(a, b) TARDIS_TRACE_CAT_(a, b)

/// Times the rest of the enclosing scope as one trace event.
#define TARDIS_TRACE_SCOPE(cat, name) \
  ::tardis::obs::TraceScope TARDIS_TRACE_NAME_(_tardis_trace_, \
                                               __COUNTER__)(cat, name)

/// Like TARDIS_TRACE_SCOPE but participates in distributed-trace
/// parenting (see TraceSpan).
#define TARDIS_TRACE_SPAN(cat, name) \
  ::tardis::obs::TraceSpan TARDIS_TRACE_NAME_(_tardis_trace_, \
                                              __COUNTER__)(cat, name)

/// Zero-duration marker event.
#define TARDIS_TRACE_INSTANT(cat, name) \
  ::tardis::obs::Tracer::Get().RecordInstant(cat, name)

#endif  // TARDIS_OBS_TRACE_H_
