#include "apps/crdt/tardis_crdts.h"

#include <atomic>
#include <sstream>
#include <functional>

#include "util/clock.h"

namespace tardis {
namespace crdt {

namespace {

/// Unique add-tags for the OR-set: wall-clock microseconds mixed with a
/// process-wide counter so concurrent adds never collide.
uint64_t FreshTag() {
  static std::atomic<uint64_t> counter{0};
  return (NowMicros() << 16) ^ (counter.fetch_add(1) & 0xFFFF);
}

/// Runs `body` inside a fresh single-mode transaction, committing with the
/// store defaults (Ancestor + Serializability — branch on conflict).
Status WithTxn(TardisStore* store, ClientSession* session,
               const std::function<Status(Transaction*)>& body) {
  auto txn = store->Begin(session);
  if (!txn.ok()) return txn.status();
  Status s = body(txn->get());
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  return (*txn)->Commit();
}

}  // namespace

// ---- counter ----------------------------------------------------------------

Status TardisCounter::Increment(ClientSession* session, int64_t delta) {
  return WithTxn(store_, session, [&](Transaction* t) {
    std::string raw;
    int64_t value = 0;
    Status s = t->Get(key_, &raw);
    if (s.ok()) value = std::stoll(raw);
    else if (!s.IsNotFound()) return s;
    return t->Put(key_, std::to_string(value + delta));
  });
}

StatusOr<int64_t> TardisCounter::Value(ClientSession* session) {
  auto txn = store_->Begin(session);
  if (!txn.ok()) return txn.status();
  std::string raw;
  Status s = (*txn)->Get(key_, &raw);
  (*txn)->Abort();
  if (s.IsNotFound()) return static_cast<int64_t>(0);
  if (!s.ok()) return s;
  return static_cast<int64_t>(std::stoll(raw));
}

Status TardisCounter::Merge(ClientSession* session) {
  auto txn = store_->BeginMerge(session);
  if (!txn.ok()) return txn.status();
  Transaction* t = txn->get();
  std::vector<StateId> parents = t->parents();
  if (parents.size() < 2) {
    t->Abort();
    return Status::OK();  // nothing to merge
  }
  auto forks = t->FindForkPoints(parents);
  if (!forks.ok()) {
    t->Abort();
    return forks.status();
  }
  auto value_at = [&](StateId sid) -> int64_t {
    std::string raw;
    Status s = t->GetForId(key_, sid, &raw);
    return s.ok() ? std::stoll(raw) : 0;
  };
  const int64_t fork_value = value_at((*forks)[0]);
  int64_t result = fork_value;
  for (StateId p : parents) {
    result += value_at(p) - fork_value;
  }
  Status s = t->Put(key_, std::to_string(result));
  if (!s.ok()) {
    t->Abort();
    return s;
  }
  return t->Commit();
}

// ---- LWW register -------------------------------------------------------------

namespace {
std::string EncodeLww(uint64_t ts, const std::string& value) {
  return std::to_string(ts) + "|" + value;
}
bool DecodeLww(const std::string& raw, uint64_t* ts, std::string* value) {
  const size_t bar = raw.find('|');
  if (bar == std::string::npos) return false;
  *ts = std::stoull(raw.substr(0, bar));
  *value = raw.substr(bar + 1);
  return true;
}
}  // namespace

Status TardisLwwRegister::Set(ClientSession* session,
                              const std::string& value) {
  return WithTxn(store_, session, [&](Transaction* t) {
    return t->Put(key_, EncodeLww(NowMicros(), value));
  });
}

StatusOr<std::string> TardisLwwRegister::Get(ClientSession* session) {
  auto txn = store_->Begin(session);
  if (!txn.ok()) return txn.status();
  std::string raw;
  Status s = (*txn)->Get(key_, &raw);
  (*txn)->Abort();
  if (!s.ok()) return s;
  uint64_t ts;
  std::string value;
  if (!DecodeLww(raw, &ts, &value)) return Status::Corruption("bad lww");
  return value;
}

Status TardisLwwRegister::Merge(ClientSession* session) {
  auto txn = store_->BeginMerge(session);
  if (!txn.ok()) return txn.status();
  Transaction* t = txn->get();
  std::vector<StateId> parents = t->parents();
  if (parents.size() < 2) {
    t->Abort();
    return Status::OK();
  }
  uint64_t best_ts = 0;
  std::string best;
  bool found = false;
  for (StateId p : parents) {
    std::string raw;
    if (!t->GetForId(key_, p, &raw).ok()) continue;
    uint64_t ts;
    std::string value;
    if (DecodeLww(raw, &ts, &value) && (!found || ts > best_ts)) {
      best_ts = ts;
      best = value;
      found = true;
    }
  }
  if (!found) {
    t->Abort();
    return Status::OK();
  }
  Status s = t->Put(key_, EncodeLww(best_ts, best));
  if (!s.ok()) {
    t->Abort();
    return s;
  }
  return t->Commit();
}

// ---- MV register ---------------------------------------------------------------

namespace {
std::string JoinValues(const std::vector<std::string>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); i++) {
    if (i) out += '\x1f';  // unit separator
    out += values[i];
  }
  return out;
}
std::vector<std::string> SplitValues(const std::string& raw) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t sep = raw.find('\x1f', start);
    if (sep == std::string::npos) {
      out.push_back(raw.substr(start));
      return out;
    }
    out.push_back(raw.substr(start, sep - start));
    start = sep + 1;
  }
}
}  // namespace

Status TardisMvRegister::Set(ClientSession* session,
                             const std::string& value) {
  return WithTxn(store_, session,
                 [&](Transaction* t) { return t->Put(key_, value); });
}

StatusOr<std::vector<std::string>> TardisMvRegister::Get(
    ClientSession* session) {
  auto txn = store_->Begin(session);
  if (!txn.ok()) return txn.status();
  std::string raw;
  Status s = (*txn)->Get(key_, &raw);
  (*txn)->Abort();
  if (s.IsNotFound()) return std::vector<std::string>{};
  if (!s.ok()) return s;
  return SplitValues(raw);
}

Status TardisMvRegister::Merge(ClientSession* session) {
  auto txn = store_->BeginMerge(session);
  if (!txn.ok()) return txn.status();
  Transaction* t = txn->get();
  std::vector<StateId> parents = t->parents();
  if (parents.size() < 2) {
    t->Abort();
    return Status::OK();
  }
  // Concurrent values = the per-branch values; keep them all (set union).
  std::set<std::string> values;
  for (StateId p : parents) {
    std::string raw;
    if (t->GetForId(key_, p, &raw).ok()) {
      for (std::string& v : SplitValues(raw)) values.insert(std::move(v));
    }
  }
  if (values.empty()) {
    t->Abort();
    return Status::OK();
  }
  Status s = t->Put(
      key_, JoinValues(std::vector<std::string>(values.begin(), values.end())));
  if (!s.ok()) {
    t->Abort();
    return s;
  }
  return t->Commit();
}

// ---- OR-set ----------------------------------------------------------------------

std::string TardisOrSet::SerializeTags(const TagSet& tags) {
  std::string out;
  bool first = true;
  for (uint64_t tag : tags) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(tag);
  }
  return out;
}

TardisOrSet::TagSet TardisOrSet::DeserializeTags(const std::string& raw) {
  TagSet tags;
  std::stringstream ss(raw);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) tags.insert(std::stoull(tok));
  }
  return tags;
}

Status TardisOrSet::Add(ClientSession* session, const std::string& element) {
  return WithTxn(store_, session, [&](Transaction* t) {
    const std::string ekey = ElementKey(element);
    std::string raw;
    Status s = t->Get(ekey, &raw);
    if (!s.ok() && !s.IsNotFound()) return s;
    const bool fresh_element = s.IsNotFound();
    TagSet tags = s.ok() ? DeserializeTags(raw) : TagSet{};
    tags.insert(FreshTag());
    TARDIS_RETURN_IF_ERROR(t->Put(ekey, SerializeTags(tags)));
    if (fresh_element) {
      // Append to the membership index (append-only; Elements() filters
      // through Contains). Only first-time adds touch it.
      std::string idx;
      Status is = t->Get(IndexKey(), &idx);
      if (!is.ok() && !is.IsNotFound()) return is;
      if (("\x1f" + idx + "\x1f").find("\x1f" + element + "\x1f") ==
          std::string::npos) {
        if (!idx.empty()) idx += '\x1f';
        idx += element;
        TARDIS_RETURN_IF_ERROR(t->Put(IndexKey(), idx));
      }
    }
    return Status::OK();
  });
}

Status TardisOrSet::Remove(ClientSession* session,
                           const std::string& element) {
  return WithTxn(store_, session, [&](Transaction* t) {
    const std::string ekey = ElementKey(element);
    std::string raw;
    Status s = t->Get(ekey, &raw);
    if (s.IsNotFound()) return Status::OK();
    if (!s.ok()) return s;
    return t->Put(ekey, "");  // all observed tags removed
  });
}

StatusOr<bool> TardisOrSet::Contains(ClientSession* session,
                                     const std::string& element) {
  auto txn = store_->Begin(session);
  if (!txn.ok()) return txn.status();
  std::string raw;
  Status s = (*txn)->Get(ElementKey(element), &raw);
  (*txn)->Abort();
  if (s.IsNotFound()) return false;
  if (!s.ok()) return s;
  return !raw.empty();
}

StatusOr<std::vector<std::string>> TardisOrSet::Elements(
    ClientSession* session) {
  auto txn = store_->Begin(session);
  if (!txn.ok()) return txn.status();
  std::string idx;
  Status s = (*txn)->Get(IndexKey(), &idx);
  if (s.IsNotFound()) {
    (*txn)->Abort();
    return std::vector<std::string>{};
  }
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  std::vector<std::string> out;
  std::stringstream ss(idx);
  std::string element;
  while (std::getline(ss, element, '\x1f')) {
    if (element.empty()) continue;
    std::string raw;
    Status es = (*txn)->Get(ElementKey(element), &raw);
    if (es.ok() && !raw.empty()) out.push_back(element);
  }
  (*txn)->Abort();
  return out;
}

Status TardisOrSet::Merge(ClientSession* session) {
  auto txn = store_->BeginMerge(session);
  if (!txn.ok()) return txn.status();
  Transaction* t = txn->get();
  std::vector<StateId> parents = t->parents();
  if (parents.size() < 2) {
    t->Abort();
    return Status::OK();
  }
  auto forks = t->FindForkPoints(parents);
  if (!forks.ok()) {
    t->Abort();
    return forks.status();
  }
  auto conflicts = t->FindConflictWrites(parents);
  if (!conflicts.ok()) {
    t->Abort();
    return conflicts.status();
  }

  const std::string eprefix = key_ + "/e/";
  for (const std::string& ckey : *conflicts) {
    if (ckey == IndexKey()) {
      // Union the membership indexes.
      std::set<std::string> members;
      for (StateId p : parents) {
        std::string idx;
        if (!t->GetForId(IndexKey(), p, &idx).ok()) continue;
        std::stringstream ss(idx);
        std::string element;
        while (std::getline(ss, element, '\x1f')) {
          if (!element.empty()) members.insert(element);
        }
      }
      std::string merged;
      for (const std::string& m : members) {
        if (!merged.empty()) merged += '\x1f';
        merged += m;
      }
      TARDIS_RETURN_IF_ERROR(t->Put(IndexKey(), merged));
      continue;
    }
    if (ckey.rfind(eprefix, 0) != 0) continue;  // not ours

    auto tags_at = [&](StateId sid) {
      std::string raw;
      return t->GetForId(ckey, sid, &raw).ok() ? DeserializeTags(raw)
                                               : TagSet{};
    };
    const TagSet fork_tags = tags_at((*forks)[0]);
    std::vector<TagSet> branch_tags;
    for (StateId p : parents) branch_tags.push_back(tags_at(p));

    // Observed-remove rule: a fork-time tag survives only if no branch
    // removed it; branch-added tags always survive.
    TagSet merged;
    for (const TagSet& b : branch_tags) {
      merged.insert(b.begin(), b.end());
    }
    for (uint64_t tag : fork_tags) {
      for (const TagSet& b : branch_tags) {
        if (!b.count(tag)) {
          merged.erase(tag);
          break;
        }
      }
    }
    TARDIS_RETURN_IF_ERROR(t->Put(ckey, SerializeTags(merged)));
  }
  return t->Commit();
}

}  // namespace crdt
}  // namespace tardis
