// CRDTs on flat (sequential) storage — the comparison implementations of
// §7.2.1. These follow Shapiro et al.'s algorithms directly: state carries
// explicit per-replica vectors, every read reconstructs the global view
// from the replica entries, and every remote operation needs an immediate
// element-wise merge. All state mutations run as serializable transactions
// on the underlying TxKV store (SeqKV/2PL or OCC), which is what limits
// per-site throughput.

#ifndef TARDIS_APPS_CRDT_FLAT_CRDTS_H_
#define TARDIS_APPS_CRDT_FLAT_CRDTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baseline/txkv.h"

namespace tardis {
namespace crdt {

/// State-based PN-counter: one increment slot and one decrement slot per
/// replica ("two separate vector clocks", §5.2). Value = Σinc − Σdec over
/// all replicas.
class FlatPnCounter {
 public:
  FlatPnCounter(TxKvStore* store, std::string key, uint32_t replica_id,
                uint32_t num_replicas)
      : store_(store),
        key_(std::move(key)),
        replica_(replica_id),
        num_replicas_(num_replicas) {}

  Status Increment(TxKvClient* client, int64_t delta = 1);
  Status Decrement(TxKvClient* client, int64_t delta = 1);
  StatusOr<int64_t> Value(TxKvClient* client);

  /// Applies a remote replica's vectors: element-wise max (required for
  /// every received remote operation).
  Status MergeRemote(TxKvClient* client,
                     const std::vector<int64_t>& remote_inc,
                     const std::vector<int64_t>& remote_dec);

 private:
  std::string SlotKey(const char* kind, uint32_t replica) const {
    return key_ + "/" + kind + "/" + std::to_string(replica);
  }

  TxKvStore* const store_;
  const std::string key_;
  const uint32_t replica_;
  const uint32_t num_replicas_;
};

/// Operation-based counter: each replica totals its own operations in its
/// slot; reads sum all slots; delivering a remote op applies it to the
/// origin replica's slot.
class FlatOpCounter {
 public:
  FlatOpCounter(TxKvStore* store, std::string key, uint32_t replica_id,
                uint32_t num_replicas)
      : store_(store),
        key_(std::move(key)),
        replica_(replica_id),
        num_replicas_(num_replicas) {}

  Status Apply(TxKvClient* client, int64_t delta);  // local op
  Status ApplyRemote(TxKvClient* client, uint32_t origin, int64_t delta);
  StatusOr<int64_t> Value(TxKvClient* client);

 private:
  std::string SlotKey(uint32_t replica) const {
    return key_ + "/op/" + std::to_string(replica);
  }

  TxKvStore* const store_;
  const std::string key_;
  const uint32_t replica_;
  const uint32_t num_replicas_;
};

/// Last-writer-wins register with an explicit (timestamp, replica) tag.
class FlatLwwRegister {
 public:
  FlatLwwRegister(TxKvStore* store, std::string key, uint32_t replica_id)
      : store_(store), key_(std::move(key)), replica_(replica_id) {}

  Status Set(TxKvClient* client, const std::string& value);
  StatusOr<std::string> Get(TxKvClient* client);
  /// Remote merge: keep the lexicographically larger (ts, replica).
  Status MergeRemote(TxKvClient* client, uint64_t remote_ts,
                     uint32_t remote_replica, const std::string& value);

 private:
  TxKvStore* const store_;
  const std::string key_;
  const uint32_t replica_;
};

/// Multi-value register: per-replica (value, version-vector) entries;
/// reads return the non-dominated set.
class FlatMvRegister {
 public:
  FlatMvRegister(TxKvStore* store, std::string key, uint32_t replica_id,
                 uint32_t num_replicas)
      : store_(store),
        key_(std::move(key)),
        replica_(replica_id),
        num_replicas_(num_replicas) {}

  Status Set(TxKvClient* client, const std::string& value);
  StatusOr<std::vector<std::string>> Get(TxKvClient* client);

 private:
  std::string SlotKey(uint32_t replica) const {
    return key_ + "/mv/" + std::to_string(replica);
  }

  TxKvStore* const store_;
  const std::string key_;
  const uint32_t replica_;
  const uint32_t num_replicas_;
};

/// Observed-remove set with explicit tags and tombstones.
class FlatOrSet {
 public:
  FlatOrSet(TxKvStore* store, std::string key, uint32_t replica_id)
      : store_(store), key_(std::move(key)), replica_(replica_id) {}

  Status Add(TxKvClient* client, const std::string& element);
  Status Remove(TxKvClient* client, const std::string& element);
  StatusOr<bool> Contains(TxKvClient* client, const std::string& element);
  StatusOr<std::vector<std::string>> Elements(TxKvClient* client);

 private:
  TxKvStore* const store_;
  const std::string key_;
  const uint32_t replica_;
};

}  // namespace crdt
}  // namespace tardis

#endif  // TARDIS_APPS_CRDT_FLAT_CRDTS_H_
