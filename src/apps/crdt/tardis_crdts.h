// CRDTs on TARDiS (§7.2.1).
//
// On TARDiS, a CRDT is written as if it lived on sequential storage: the
// datatype's state is a single plain field, operations are single-mode
// transactions, and a *merge function* reconciles branches using the fork
// point the store tracks for free. Contrast with flat_crdts.h, where the
// same datatypes carry explicit per-replica vectors.
//
// Five types, matching Figure 14: operation-based counter, state-based
// PN-counter, last-writer-wins register, multi-value register, OR-set.

#ifndef TARDIS_APPS_CRDT_TARDIS_CRDTS_H_
#define TARDIS_APPS_CRDT_TARDIS_CRDTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/tardis_store.h"

namespace tardis {
namespace crdt {

/// Counter (covers both the op-based and PN flavours: on TARDiS both
/// reduce to an integer field plus the Figure 3 delta merge).
class TardisCounter {
 public:
  TardisCounter(TardisStore* store, std::string key)
      : store_(store), key_(std::move(key)) {}

  Status Increment(ClientSession* session, int64_t delta = 1);
  Status Decrement(ClientSession* session, int64_t delta = 1) {
    return Increment(session, -delta);
  }
  StatusOr<int64_t> Value(ClientSession* session);

  /// Figure 3's merge: value = fork + Σ_branches (branch - fork).
  Status Merge(ClientSession* session);

 private:
  TardisStore* const store_;
  const std::string key_;
};

/// Last-writer-wins register: each Set records a (timestamp, writer) pair;
/// the merge keeps the branch value with the largest timestamp.
class TardisLwwRegister {
 public:
  TardisLwwRegister(TardisStore* store, std::string key)
      : store_(store), key_(std::move(key)) {}

  Status Set(ClientSession* session, const std::string& value);
  StatusOr<std::string> Get(ClientSession* session);
  Status Merge(ClientSession* session);

 private:
  TardisStore* const store_;
  const std::string key_;
};

/// Multi-value register: Get returns the branch-local value; Concurrent
/// values are exactly the per-branch values, surfaced on demand. The merge
/// stores the set of concurrent values (a later Set collapses it).
class TardisMvRegister {
 public:
  TardisMvRegister(TardisStore* store, std::string key)
      : store_(store), key_(std::move(key)) {}

  Status Set(ClientSession* session, const std::string& value);
  /// Values visible on this client's branch (usually one; several right
  /// after a merge).
  StatusOr<std::vector<std::string>> Get(ClientSession* session);
  Status Merge(ClientSession* session);

 private:
  TardisStore* const store_;
  const std::string key_;
};

/// Observed-remove set. Each element lives under its own key
/// (`<set>/e/<element>`) holding that element's set of unique add-tags, so
/// operations on different elements never conflict; a membership index
/// (`<set>/idx`, append-only) supports enumeration. Remove deletes the
/// tags it has observed. The merge applies the OR-set rule per element
/// against the fork point's tags:
///   merged = U_branches(tags) minus U_branches(fork_tags - branch_tags)
class TardisOrSet {
 public:
  TardisOrSet(TardisStore* store, std::string key)
      : store_(store), key_(std::move(key)) {}

  Status Add(ClientSession* session, const std::string& element);
  Status Remove(ClientSession* session, const std::string& element);
  StatusOr<bool> Contains(ClientSession* session, const std::string& element);
  StatusOr<std::vector<std::string>> Elements(ClientSession* session);
  Status Merge(ClientSession* session);

  /// Key of an element's tag set (exposed for tests that build
  /// conflicting states by hand).
  std::string ElementKey(const std::string& element) const {
    return key_ + "/e/" + element;
  }
  std::string IndexKey() const { return key_ + "/idx"; }

  // Tag-set (de)serialization: comma-separated decimal tags.
  using TagSet = std::set<uint64_t>;
  static std::string SerializeTags(const TagSet& tags);
  static TagSet DeserializeTags(const std::string& raw);

 private:
  TardisStore* const store_;
  const std::string key_;
};

}  // namespace crdt
}  // namespace tardis

#endif  // TARDIS_APPS_CRDT_TARDIS_CRDTS_H_
