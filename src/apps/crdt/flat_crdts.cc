#include "apps/crdt/flat_crdts.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <functional>
#include <tuple>

#include "util/clock.h"

namespace tardis {
namespace crdt {

namespace {

int64_t ParseOrZero(const Status& s, const std::string& raw) {
  return s.ok() && !raw.empty() ? std::stoll(raw) : 0;
}

Status RunTxn(TxKvClient* client,
              const std::function<Status(TxKvTransaction*)>& body,
              int max_retries = 64) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < max_retries; attempt++) {
    auto txn = client->Begin();
    if (!txn.ok()) return txn.status();
    Status s = body(txn->get());
    if (s.ok()) s = (*txn)->Commit();
    else (*txn)->Abort();
    if (s.ok()) return s;
    if (!s.IsBusy() && !s.IsConflict() && !s.IsAborted()) return s;
    last = s;  // contention: retry
  }
  return last;
}

}  // namespace

// ---- PN-counter ---------------------------------------------------------------

Status FlatPnCounter::Increment(TxKvClient* client, int64_t delta) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    const std::string slot = SlotKey("inc", replica_);
    std::string raw;
    Status s = t->Get(slot, &raw);
    if (!s.ok() && !s.IsNotFound()) return s;
    return t->Put(slot, std::to_string(ParseOrZero(s, raw) + delta));
  });
}

Status FlatPnCounter::Decrement(TxKvClient* client, int64_t delta) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    const std::string slot = SlotKey("dec", replica_);
    std::string raw;
    Status s = t->Get(slot, &raw);
    if (!s.ok() && !s.IsNotFound()) return s;
    return t->Put(slot, std::to_string(ParseOrZero(s, raw) + delta));
  });
}

StatusOr<int64_t> FlatPnCounter::Value(TxKvClient* client) {
  int64_t value = 0;
  Status s = RunTxn(client, [&](TxKvTransaction* t) {
    // Reconstructing the global view costs a read per replica per vector.
    value = 0;
    for (uint32_t r = 0; r < num_replicas_; r++) {
      std::string raw;
      Status gs = t->Get(SlotKey("inc", r), &raw);
      if (!gs.ok() && !gs.IsNotFound()) return gs;
      value += ParseOrZero(gs, raw);
      gs = t->Get(SlotKey("dec", r), &raw);
      if (!gs.ok() && !gs.IsNotFound()) return gs;
      value -= ParseOrZero(gs, raw);
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  return value;
}

Status FlatPnCounter::MergeRemote(TxKvClient* client,
                                  const std::vector<int64_t>& remote_inc,
                                  const std::vector<int64_t>& remote_dec) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    for (uint32_t r = 0; r < num_replicas_; r++) {
      for (const char* kind : {"inc", "dec"}) {
        const int64_t remote = std::string(kind) == "inc"
                                   ? (r < remote_inc.size() ? remote_inc[r] : 0)
                                   : (r < remote_dec.size() ? remote_dec[r] : 0);
        const std::string slot = SlotKey(kind, r);
        std::string raw;
        Status gs = t->Get(slot, &raw);
        if (!gs.ok() && !gs.IsNotFound()) return gs;
        const int64_t local = ParseOrZero(gs, raw);
        if (remote > local) {
          Status ps = t->Put(slot, std::to_string(remote));
          if (!ps.ok()) return ps;
        }
      }
    }
    return Status::OK();
  });
}

// ---- op-based counter ------------------------------------------------------------

Status FlatOpCounter::Apply(TxKvClient* client, int64_t delta) {
  return ApplyRemote(client, replica_, delta);
}

Status FlatOpCounter::ApplyRemote(TxKvClient* client, uint32_t origin,
                                  int64_t delta) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    const std::string slot = SlotKey(origin);
    std::string raw;
    Status s = t->Get(slot, &raw);
    if (!s.ok() && !s.IsNotFound()) return s;
    return t->Put(slot, std::to_string(ParseOrZero(s, raw) + delta));
  });
}

StatusOr<int64_t> FlatOpCounter::Value(TxKvClient* client) {
  int64_t value = 0;
  Status s = RunTxn(client, [&](TxKvTransaction* t) {
    value = 0;
    for (uint32_t r = 0; r < num_replicas_; r++) {
      std::string raw;
      Status gs = t->Get(SlotKey(r), &raw);
      if (!gs.ok() && !gs.IsNotFound()) return gs;
      value += ParseOrZero(gs, raw);
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  return value;
}

// ---- LWW register -----------------------------------------------------------------

namespace {
std::string EncodeTagged(uint64_t ts, uint32_t replica,
                         const std::string& value) {
  return std::to_string(ts) + "|" + std::to_string(replica) + "|" + value;
}
bool DecodeTagged(const std::string& raw, uint64_t* ts, uint32_t* replica,
                  std::string* value) {
  const size_t a = raw.find('|');
  if (a == std::string::npos) return false;
  const size_t b = raw.find('|', a + 1);
  if (b == std::string::npos) return false;
  *ts = std::stoull(raw.substr(0, a));
  *replica = static_cast<uint32_t>(std::stoul(raw.substr(a + 1, b - a - 1)));
  *value = raw.substr(b + 1);
  return true;
}
}  // namespace

Status FlatLwwRegister::Set(TxKvClient* client, const std::string& value) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    return t->Put(key_, EncodeTagged(NowMicros(), replica_, value));
  });
}

StatusOr<std::string> FlatLwwRegister::Get(TxKvClient* client) {
  std::string value;
  bool found = false;
  Status s = RunTxn(client, [&](TxKvTransaction* t) {
    std::string raw;
    Status gs = t->Get(key_, &raw);
    if (gs.IsNotFound()) {
      found = false;
      return Status::OK();
    }
    if (!gs.ok()) return gs;
    uint64_t ts;
    uint32_t rep;
    if (!DecodeTagged(raw, &ts, &rep, &value)) {
      return Status::Corruption("bad lww encoding");
    }
    found = true;
    return Status::OK();
  });
  if (!s.ok()) return s;
  if (!found) return Status::NotFound();
  return value;
}

Status FlatLwwRegister::MergeRemote(TxKvClient* client, uint64_t remote_ts,
                                    uint32_t remote_replica,
                                    const std::string& value) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    std::string raw;
    Status gs = t->Get(key_, &raw);
    uint64_t ts = 0;
    uint32_t rep = 0;
    std::string local;
    if (gs.ok()) {
      if (!DecodeTagged(raw, &ts, &rep, &local)) {
        return Status::Corruption("bad lww encoding");
      }
    } else if (!gs.IsNotFound()) {
      return gs;
    }
    if (std::tie(remote_ts, remote_replica) > std::tie(ts, rep)) {
      return t->Put(key_, EncodeTagged(remote_ts, remote_replica, value));
    }
    return Status::OK();
  });
}

// ---- MV register -----------------------------------------------------------------

namespace {
// Slot payload: "v1,v2,...,vn|value" — a version vector plus the value.
std::string EncodeMv(const std::vector<uint64_t>& vv,
                     const std::string& value) {
  std::string out;
  for (size_t i = 0; i < vv.size(); i++) {
    if (i) out += ',';
    out += std::to_string(vv[i]);
  }
  out += '|';
  out += value;
  return out;
}
bool DecodeMv(const std::string& raw, std::vector<uint64_t>* vv,
              std::string* value) {
  const size_t bar = raw.find('|');
  if (bar == std::string::npos) return false;
  vv->clear();
  std::stringstream ss(raw.substr(0, bar));
  std::string tok;
  while (std::getline(ss, tok, ',')) vv->push_back(std::stoull(tok));
  *value = raw.substr(bar + 1);
  return true;
}
bool Dominates(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  bool strict = false;
  for (size_t i = 0; i < std::max(a.size(), b.size()); i++) {
    const uint64_t av = i < a.size() ? a[i] : 0;
    const uint64_t bv = i < b.size() ? b[i] : 0;
    if (av < bv) return false;
    if (av > bv) strict = true;
  }
  return strict;
}
}  // namespace

Status FlatMvRegister::Set(TxKvClient* client, const std::string& value) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    // New version vector: element-wise max of all slots, bump own entry.
    std::vector<uint64_t> vv(num_replicas_, 0);
    for (uint32_t r = 0; r < num_replicas_; r++) {
      std::string raw;
      Status gs = t->Get(SlotKey(r), &raw);
      if (gs.IsNotFound()) continue;
      if (!gs.ok()) return gs;
      std::vector<uint64_t> slot_vv;
      std::string unused;
      if (!DecodeMv(raw, &slot_vv, &unused)) continue;
      for (size_t i = 0; i < slot_vv.size() && i < vv.size(); i++) {
        vv[i] = std::max(vv[i], slot_vv[i]);
      }
    }
    vv[replica_]++;
    return t->Put(SlotKey(replica_), EncodeMv(vv, value));
  });
}

StatusOr<std::vector<std::string>> FlatMvRegister::Get(TxKvClient* client) {
  std::vector<std::string> result;
  Status s = RunTxn(client, [&](TxKvTransaction* t) {
    struct Entry {
      std::vector<uint64_t> vv;
      std::string value;
    };
    std::vector<Entry> entries;
    for (uint32_t r = 0; r < num_replicas_; r++) {
      std::string raw;
      Status gs = t->Get(SlotKey(r), &raw);
      if (gs.IsNotFound()) continue;
      if (!gs.ok()) return gs;
      Entry e;
      if (DecodeMv(raw, &e.vv, &e.value)) entries.push_back(std::move(e));
    }
    result.clear();
    for (size_t i = 0; i < entries.size(); i++) {
      bool dominated = false;
      for (size_t j = 0; j < entries.size(); j++) {
        if (i != j && Dominates(entries[j].vv, entries[i].vv)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.push_back(entries[i].value);
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

// ---- OR-set ---------------------------------------------------------------------

namespace {
uint64_t FlatFreshTag() {
  static std::atomic<uint64_t> counter{0};
  return (NowMicros() << 16) ^ (counter.fetch_add(1) & 0xFFFF);
}
}  // namespace

Status FlatOrSet::Add(TxKvClient* client, const std::string& element) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    const std::string ekey = key_ + "/e/" + element;
    std::string raw;
    Status gs = t->Get(ekey, &raw);
    if (!gs.ok() && !gs.IsNotFound()) return gs;
    // Payload: comma-separated live tags.
    std::string tags = gs.ok() ? raw : "";
    if (!tags.empty()) tags += ',';
    tags += std::to_string(FlatFreshTag());
    return t->Put(ekey, tags);
  });
}

Status FlatOrSet::Remove(TxKvClient* client, const std::string& element) {
  return RunTxn(client, [&](TxKvTransaction* t) {
    const std::string ekey = key_ + "/e/" + element;
    std::string raw;
    Status gs = t->Get(ekey, &raw);
    if (gs.IsNotFound()) return Status::OK();
    if (!gs.ok()) return gs;
    return t->Put(ekey, "");  // all observed tags removed
  });
}

StatusOr<bool> FlatOrSet::Contains(TxKvClient* client,
                                   const std::string& element) {
  bool present = false;
  Status s = RunTxn(client, [&](TxKvTransaction* t) {
    std::string raw;
    Status gs = t->Get(key_ + "/e/" + element, &raw);
    if (gs.IsNotFound()) {
      present = false;
      return Status::OK();
    }
    if (!gs.ok()) return gs;
    present = !raw.empty();
    return Status::OK();
  });
  if (!s.ok()) return s;
  return present;
}

StatusOr<std::vector<std::string>> FlatOrSet::Elements(TxKvClient* client) {
  // Flat storage has no efficient way to enumerate element keys without a
  // scan index; maintain one under key_/index in Add. For the benchmark
  // workloads Contains() is what matters; Elements is not supported here.
  return Status::NotSupported("FlatOrSet::Elements requires a scan index");
}

}  // namespace crdt
}  // namespace tardis
