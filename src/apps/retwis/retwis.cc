#include "apps/retwis/retwis.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>

#include "util/clock.h"

namespace tardis {
namespace retwis {

namespace {

uint64_t FreshPostId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1);
}

std::vector<uint32_t> ParseIdList(const std::string& raw) {
  std::vector<uint32_t> out;
  std::stringstream ss(raw);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<uint32_t>(std::stoul(tok)));
  }
  return out;
}

std::string JoinIdList(const std::vector<uint32_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); i++) {
    if (i) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

Status AppendId(TxKvTransaction* t, const std::string& key, uint32_t id) {
  std::string raw;
  Status s = t->Get(key, &raw);
  if (!s.ok() && !s.IsNotFound()) return s;
  std::vector<uint32_t> ids = s.ok() ? ParseIdList(raw) : std::vector<uint32_t>{};
  if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
    return Status::OK();
  }
  ids.push_back(id);
  return t->Put(key, JoinIdList(ids));
}

}  // namespace

std::string Retwis::TimelineKey(uint32_t user) {
  return "u/" + std::to_string(user) + "/timeline";
}
std::string Retwis::FollowersKey(uint32_t user) {
  return "u/" + std::to_string(user) + "/followers";
}
std::string Retwis::FollowingKey(uint32_t user) {
  return "u/" + std::to_string(user) + "/following";
}

std::string Retwis::EncodeTimeline(const std::vector<Post>& posts) {
  std::string out;
  char buf[64];
  for (const Post& p : posts) {
    snprintf(buf, sizeof(buf), "%" PRIx64 ":%" PRIx64 ":%x\n",
             p.timestamp_us, p.post_id, p.author);
    out += buf;
  }
  return out;
}

std::vector<Post> Retwis::DecodeTimeline(const std::string& raw) {
  std::vector<Post> out;
  std::stringstream ss(raw);
  std::string line;
  while (std::getline(ss, line)) {
    Post p;
    unsigned author = 0;
    if (sscanf(line.c_str(), "%" SCNx64 ":%" SCNx64 ":%x", &p.timestamp_us,
               &p.post_id, &author) == 3) {
      p.author = author;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Post> Retwis::MergeTimelines(
    const std::vector<std::vector<Post>>& timelines) {
  std::vector<Post> all;
  std::set<uint64_t> seen;
  for (const auto& tl : timelines) {
    for (const Post& p : tl) {
      if (seen.insert(p.post_id).second) all.push_back(p);
    }
  }
  std::sort(all.begin(), all.end(), [](const Post& a, const Post& b) {
    return a.timestamp_us != b.timestamp_us
               ? a.timestamp_us > b.timestamp_us
               : a.post_id > b.post_id;
  });
  if (all.size() > kTimelineCap) all.resize(kTimelineCap);
  return all;
}

Status Retwis::CreateAccount(Client* client, uint32_t user_id) {
  auto txn = client->kv()->Begin();
  if (!txn.ok()) return txn.status();
  TxKvTransaction* t = txn->get();
  const std::string ukey = "u/" + std::to_string(user_id) + "/exists";
  std::string raw;
  Status s = t->Get(ukey, &raw);
  if (s.ok()) {
    (*txn)->Abort();
    return Status::OK();  // already registered
  }
  if (!s.IsNotFound()) {
    (*txn)->Abort();
    return s;
  }
  s = t->Put(ukey, "1");
  if (s.ok()) {
    // Bump the global user counter (a natural hotspot; this is where
    // duplicate-id conflicts arise across branches/sites).
    std::string count;
    Status cs = t->Get("users", &count);
    if (!cs.ok() && !cs.IsNotFound()) s = cs;
    else {
      const uint64_t n = cs.ok() ? std::stoull(count) : 0;
      s = t->Put("users", std::to_string(n + 1));
    }
  }
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  return (*txn)->Commit();
}

Status Retwis::FollowUser(Client* client, uint32_t follower,
                          uint32_t followee) {
  auto txn = client->kv()->Begin();
  if (!txn.ok()) return txn.status();
  TxKvTransaction* t = txn->get();
  Status s = AppendId(t, FollowingKey(follower), followee);
  if (s.ok()) s = AppendId(t, FollowersKey(followee), follower);
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  return (*txn)->Commit();
}

Status Retwis::PostTweet(Client* client, uint32_t author,
                    const std::string& body) {
  auto txn = client->kv()->Begin();
  if (!txn.ok()) return txn.status();
  TxKvTransaction* t = txn->get();

  Post post;
  post.timestamp_us = NowMicros();
  post.post_id = FreshPostId();
  post.author = author;

  Status s = t->Put("p/" + std::to_string(post.post_id), body);

  // Fan out on write: author + all followers.
  std::vector<uint32_t> targets{author};
  if (s.ok()) {
    std::string raw;
    Status fs = t->Get(FollowersKey(author), &raw);
    if (fs.ok()) {
      for (uint32_t f : ParseIdList(raw)) targets.push_back(f);
    } else if (!fs.IsNotFound()) {
      s = fs;
    }
  }
  for (uint32_t target : targets) {
    if (!s.ok()) break;
    const std::string tkey = TimelineKey(target);
    std::string raw;
    Status gs = t->Get(tkey, &raw);
    if (!gs.ok() && !gs.IsNotFound()) {
      s = gs;
      break;
    }
    std::vector<Post> timeline =
        gs.ok() ? DecodeTimeline(raw) : std::vector<Post>{};
    timeline.insert(timeline.begin(), post);
    if (timeline.size() > kTimelineCap) timeline.resize(kTimelineCap);
    s = t->Put(tkey, EncodeTimeline(timeline));
  }
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  return (*txn)->Commit();
}

StatusOr<std::vector<Post>> Retwis::ReadOwnTimeline(Client* client,
                                                    uint32_t user_id) {
  auto txn = client->kv()->Begin();
  if (!txn.ok()) return txn.status();
  std::string raw;
  Status s = (*txn)->Get(TimelineKey(user_id), &raw);
  if (s.IsNotFound()) {
    Status cs = (*txn)->Commit();
    if (!cs.ok()) return cs;
    return std::vector<Post>{};
  }
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  Status cs = (*txn)->Commit();
  if (!cs.ok()) return cs;
  return DecodeTimeline(raw);
}

}  // namespace retwis
}  // namespace tardis
