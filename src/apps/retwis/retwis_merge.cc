#include "apps/retwis/retwis_merge.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

namespace tardis {
namespace retwis {

namespace {

std::set<uint32_t> ParseIdSet(const std::string& raw) {
  std::set<uint32_t> out;
  std::stringstream ss(raw);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.insert(static_cast<uint32_t>(std::stoul(tok)));
  }
  return out;
}

std::string JoinIdSet(const std::set<uint32_t>& ids) {
  std::string out;
  bool first = true;
  for (uint32_t id : ids) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(id);
  }
  return out;
}

}  // namespace

Status RetwisMerger::MergeOnce() {
  auto txn = store_->BeginMerge(session_.get());
  if (!txn.ok()) return txn.status();
  Transaction* t = txn->get();
  std::vector<StateId> parents = t->parents();
  if (parents.size() < 2) {
    t->Abort();
    return Status::OK();
  }

  auto conflicts = t->FindConflictWrites(parents);
  if (!conflicts.ok()) {
    t->Abort();
    return conflicts.status();
  }

  for (const std::string& key : *conflicts) {
    // Collect the per-branch values.
    std::vector<std::string> values;
    for (StateId p : parents) {
      std::string raw;
      if (t->GetForId(key, p, &raw).ok()) values.push_back(std::move(raw));
    }
    if (values.empty()) continue;

    Status s;
    if (key.find("/timeline") != std::string::npos) {
      // Merge timelines preserving post order.
      std::vector<std::vector<Post>> timelines;
      for (const std::string& raw : values) {
        timelines.push_back(Retwis::DecodeTimeline(raw));
      }
      s = t->Put(key, Retwis::EncodeTimeline(Retwis::MergeTimelines(timelines)));
    } else if (key.find("/followers") != std::string::npos ||
               key.find("/following") != std::string::npos) {
      // Set-union the adjacency lists.
      std::set<uint32_t> merged;
      for (const std::string& raw : values) {
        auto ids = ParseIdSet(raw);
        merged.insert(ids.begin(), ids.end());
      }
      s = t->Put(key, JoinIdSet(merged));
    } else if (key == "users") {
      // Resolve duplicate user ids: the merged registration count is the
      // max across branches (ids are re-validated by u/<id>/exists keys).
      uint64_t best = 0;
      for (const std::string& raw : values) {
        best = std::max<uint64_t>(best, std::stoull(raw));
      }
      s = t->Put(key, std::to_string(best));
    } else {
      // Posts and exist-flags are immutable/idempotent: any branch value
      // works; pick the first.
      s = t->Put(key, values[0]);
    }
    if (!s.ok()) {
      t->Abort();
      return s;
    }
  }

  Status s = t->Commit();
  if (s.ok()) merges_++;
  return s;
}

}  // namespace retwis
}  // namespace tardis
