// Retwis: the Twitter-clone ALPS application of §7.2.2.
//
// Four operations — createAccount, followUser, post, readOwnTimeline —
// implemented against the backend-neutral TxKV interface so the same
// application code runs on TARDiS, the 2PL stand-in ("BDB") and OCC.
//
// Data model (all values are compact strings):
//   u/<id>/following  — comma-separated user ids
//   u/<id>/followers  — comma-separated user ids
//   u/<id>/timeline   — newline-joined "<ts_hex>:<post_id_hex>:<author>"
//                       entries, newest first, capped at kTimelineCap
//   p/<post_id>       — the post body
//   users             — registered user count
//
// Posting fans out on write: the post is prepended to the author's and
// every follower's timeline inside one transaction — the contention the
// paper calls out. readOwnTimeline returns the 50 most recent entries.

#ifndef TARDIS_APPS_RETWIS_RETWIS_H_
#define TARDIS_APPS_RETWIS_RETWIS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/txkv.h"

namespace tardis {
namespace retwis {

constexpr size_t kTimelineCap = 50;

struct Post {
  uint64_t timestamp_us = 0;
  uint64_t post_id = 0;
  uint32_t author = 0;
};

class Retwis {
 public:
  explicit Retwis(TxKvStore* store) : store_(store) {}

  /// Per-thread handle (wraps a TxKvClient).
  class Client {
   public:
    explicit Client(std::unique_ptr<TxKvClient> kv) : kv_(std::move(kv)) {}
    TxKvClient* kv() { return kv_.get(); }

   private:
    std::unique_ptr<TxKvClient> kv_;
  };

  std::unique_ptr<Client> NewClient() {
    return std::make_unique<Client>(store_->NewClient());
  }

  /// Registers user `user_id`. Idempotent.
  Status CreateAccount(Client* client, uint32_t user_id);

  /// `follower` starts following `followee` (updates both adjacency
  /// lists).
  Status FollowUser(Client* client, uint32_t follower, uint32_t followee);

  /// Publishes a post and fans it out to every follower's timeline.
  Status PostTweet(Client* client, uint32_t author, const std::string& body);

  /// The 50 most recent posts on the user's timeline (own + followees').
  StatusOr<std::vector<Post>> ReadOwnTimeline(Client* client,
                                              uint32_t user_id);

  // --- timeline codec (exposed for the merge resolver and tests) ---------
  static std::string EncodeTimeline(const std::vector<Post>& posts);
  static std::vector<Post> DecodeTimeline(const std::string& raw);
  /// Union of timelines, newest first, deduplicated, capped.
  static std::vector<Post> MergeTimelines(
      const std::vector<std::vector<Post>>& timelines);

  static std::string TimelineKey(uint32_t user);
  static std::string FollowersKey(uint32_t user);
  static std::string FollowingKey(uint32_t user);

 private:
  TxKvStore* const store_;
};

}  // namespace retwis
}  // namespace tardis

#endif  // TARDIS_APPS_RETWIS_RETWIS_H_
