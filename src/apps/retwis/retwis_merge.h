// RetwisMerger: the TARDiS-specific conflict resolver for Retwis
// (§7.2.2): "a separate conflict resolver that periodically merges
// conflicting branches by resolving duplicate user ids and merging
// timelines (preserving the order of posts)".

#ifndef TARDIS_APPS_RETWIS_RETWIS_MERGE_H_
#define TARDIS_APPS_RETWIS_RETWIS_MERGE_H_

#include <memory>

#include "apps/retwis/retwis.h"
#include "core/tardis_store.h"

namespace tardis {
namespace retwis {

class RetwisMerger {
 public:
  explicit RetwisMerger(TardisStore* store)
      : store_(store), session_(store->CreateSession()) {}

  /// Merges all current branches once. Returns OK (and does nothing) when
  /// there is a single branch.
  Status MergeOnce();

  uint64_t merges() const { return merges_; }

 private:
  TardisStore* const store_;
  std::unique_ptr<ClientSession> session_;
  uint64_t merges_ = 0;
};

}  // namespace retwis
}  // namespace tardis

#endif  // TARDIS_APPS_RETWIS_RETWIS_MERGE_H_
