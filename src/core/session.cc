#include "core/session.h"

#include <cstdio>

namespace tardis {

namespace {

/// Parses [begin,end) as hex into *out. Rejects empty input and anything
/// longer than 16 digits (same contract as the trace-header parser).
bool ParseHex(const char* begin, const char* end, uint64_t* out) {
  if (begin == end || end - begin > 16) return false;
  uint64_t v = 0;
  for (const char* p = begin; p != end; p++) {
    char c = *p;
    uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

/// Parses a `<site>:<seq>` floor pair, decimal on both sides (matching
/// GlobalStateId::ToString, so floors round-trip through `OK STATE`
/// replies without a base conversion).
bool ParseFloor(const char* begin, const char* end, uint32_t* site,
                uint64_t* seq) {
  const char* colon = nullptr;
  for (const char* p = begin; p != end; p++) {
    if (*p == ':') {
      colon = p;
      break;
    }
  }
  if (colon == nullptr || colon == begin || colon + 1 == end) return false;
  uint64_t s = 0;
  for (const char* p = begin; p != colon; p++) {
    if (*p < '0' || *p > '9' || colon - begin > 10) return false;
    s = s * 10 + static_cast<uint64_t>(*p - '0');
  }
  if (s > UINT32_MAX) return false;
  uint64_t q = 0;
  if (end - colon - 1 > 20) return false;
  for (const char* p = colon + 1; p != end; p++) {
    if (*p < '0' || *p > '9') return false;
    q = q * 10 + static_cast<uint64_t>(*p - '0');
  }
  *site = static_cast<uint32_t>(s);
  *seq = q;
  return true;
}

}  // namespace

std::string FormatSessionHeader(const SessionHeader& h) {
  char buf[80];
  snprintf(buf, sizeof(buf), "*S%llx/%llx/%llx/%x",
           static_cast<unsigned long long>(h.session_id),
           static_cast<unsigned long long>(h.seq),
           static_cast<unsigned long long>(h.attempt), h.flags);
  std::string out = buf;
  for (size_t i = 0; i < h.floors.size(); i++) {
    out += i == 0 ? '/' : ',';
    out += std::to_string(h.floors[i].first);
    out += ':';
    out += std::to_string(h.floors[i].second);
  }
  return out;
}

bool ParseSessionHeader(const std::string& token, SessionHeader* h) {
  if (token.size() < 3 || token[0] != '*' || token[1] != 'S') return false;
  if (token.size() > kMaxSessionHeaderBytes) return false;
  const size_t slash1 = token.find('/', 2);
  if (slash1 == std::string::npos) return false;
  const size_t slash2 = token.find('/', slash1 + 1);
  if (slash2 == std::string::npos) return false;
  const size_t slash3 = token.find('/', slash2 + 1);
  if (slash3 == std::string::npos) return false;
  const char* s = token.data();
  uint64_t sid = 0, seq = 0, attempt = 0, flags = 0;
  if (!ParseHex(s + 2, s + slash1, &sid)) return false;
  if (!ParseHex(s + slash1 + 1, s + slash2, &seq)) return false;
  if (!ParseHex(s + slash2 + 1, s + slash3, &attempt)) return false;
  const size_t slash4 = token.find('/', slash3 + 1);
  const size_t flags_end = slash4 == std::string::npos ? token.size() : slash4;
  if (!ParseHex(s + slash3 + 1, s + flags_end, &flags)) return false;
  if (sid == 0) return false;
  if (flags > UINT32_MAX) return false;
  std::vector<std::pair<uint32_t, uint64_t>> floors;
  if (slash4 != std::string::npos) {
    size_t pos = slash4 + 1;
    while (pos < token.size()) {
      size_t comma = token.find(',', pos);
      if (comma == std::string::npos) comma = token.size();
      uint32_t site = 0;
      uint64_t floor_seq = 0;
      if (!ParseFloor(s + pos, s + comma, &site, &floor_seq)) return false;
      floors.emplace_back(site, floor_seq);
      if (floors.size() > kMaxSessionFloors) return false;
      pos = comma + 1;
    }
    if (floors.empty()) return false;  // trailing '/' with nothing after
  }
  h->session_id = sid;
  h->seq = seq;
  h->attempt = attempt;
  h->flags = static_cast<uint32_t>(flags);
  h->floors = std::move(floors);
  return true;
}

SessionHeaderStatus StripSessionHeader(std::string* line, SessionHeader* h) {
  size_t start = line->find_first_not_of(" \t");
  if (start == std::string::npos) return SessionHeaderStatus::kAbsent;
  if (line->compare(start, 2, "*S") != 0) return SessionHeaderStatus::kAbsent;
  size_t end = line->find_first_of(" \t", start);
  if (end == std::string::npos) end = line->size();
  const std::string token = line->substr(start, end - start);
  const bool parsed = ParseSessionHeader(token, h);
  size_t rest = line->find_first_not_of(" \t", end);
  if (rest == std::string::npos) rest = line->size();
  line->erase(0, rest);
  return parsed ? SessionHeaderStatus::kOk : SessionHeaderStatus::kMalformed;
}

std::string FormatFloorToken(const std::map<uint32_t, uint64_t>& floors) {
  std::string out = "*F";
  bool first = true;
  for (const auto& [site, seq] : floors) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(site);
    out += ':';
    out += std::to_string(seq);
  }
  return out;
}

bool StripFloorToken(std::string* reply,
                     std::map<uint32_t, uint64_t>* floors) {
  if (reply->compare(0, 2, "*F") != 0) return false;
  size_t end = reply->find(' ');
  if (end == std::string::npos) end = reply->size();
  const char* s = reply->data();
  size_t pos = 2;
  std::map<uint32_t, uint64_t> parsed;
  while (pos < end) {
    size_t comma = reply->find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    uint32_t site = 0;
    uint64_t seq = 0;
    if (!ParseFloor(s + pos, s + comma, &site, &seq)) return false;
    // Keep the max if a site repeats (it never should).
    uint64_t& slot = parsed[site];
    if (seq > slot) slot = seq;
    pos = comma + 1;
  }
  if (parsed.empty()) return false;
  size_t rest = reply->find_first_not_of(' ', end);
  if (rest == std::string::npos) rest = reply->size();
  reply->erase(0, rest);
  for (const auto& [site, seq] : parsed) {
    uint64_t& slot = (*floors)[site];
    if (seq > slot) slot = seq;
  }
  return true;
}

uint64_t DeriveSessionTxnId(uint64_t session_id, uint64_t seq,
                            uint64_t attempt) {
  // SplitMix64 finalizer over a mix of the triple: deterministic for a
  // given request, uniformly spread across the txn-id space otherwise.
  uint64_t x = session_id;
  x ^= seq + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
  x ^= attempt + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

bool SessionFloorsCovered(const SessionHeader& h, uint32_t local_site,
                          uint64_t local_applied_seq,
                          const std::map<uint32_t, uint64_t>& applied) {
  for (const auto& [site, floor] : h.floors) {
    uint64_t have = 0;
    if (site == local_site) {
      have = local_applied_seq;
    } else {
      auto it = applied.find(site);
      if (it != applied.end()) have = it->second;
    }
    if (have < floor) return false;
  }
  return true;
}

// ---- SessionDedup -----------------------------------------------------------

SessionDedup::SessionDedup(Options options) : options_(options) {}

void SessionDedup::RegisterMetrics(obs::MetricsRegistry* registry,
                                   void* owner) {
  if (registry == nullptr) return;
  hits_ = registry->RegisterCounter(
      "tardis_session_dedup_hits",
      "Retried session writes answered from the dedup table");
  evictions_ = registry->RegisterCounter(
      "tardis_session_dedup_evictions",
      "Session dedup entries evicted by the table bounds");
  duplicates_counter_ = registry->RegisterCounter(
      "tardis_session_dedup_duplicates",
      "Session (id, seq) pairs observed committed under two different "
      "states — a duplicate that slipped past dedup");
  rejected_ = registry->RegisterCounter(
      "tardis_session_header_rejected",
      "Requests rejected for a corrupt or oversized *S session header");
  registry->RegisterCallbackGauge(
      "tardis_session_dedup_entries",
      "Session dedup (id, seq) entries currently held",
      [this] { return static_cast<double>(entry_count()); }, {}, owner);
  registry->RegisterCallbackGauge(
      "tardis_session_dedup_sessions",
      "Distinct client sessions currently tracked by dedup",
      [this] { return static_cast<double>(session_count()); }, {}, owner);
}

bool SessionDedup::Lookup(uint64_t session_id, uint64_t seq,
                          GlobalStateId* guid) {
  if (session_id == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return false;
  auto eit = it->second.entries.find(seq);
  if (eit == it->second.entries.end()) return false;
  *guid = eit->second;
  TouchLocked(session_id, &it->second);
  if (hits_ != nullptr) hits_->Increment();
  return true;
}

void SessionDedup::Record(uint64_t session_id, uint64_t seq,
                          const GlobalStateId& guid) {
  if (session_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    // Evict the least-recently-used session to stay within bounds.
    while (sessions_.size() >= options_.max_sessions && !lru_.empty()) {
      const uint64_t victim = lru_.back();
      lru_.pop_back();
      auto vit = sessions_.find(victim);
      if (vit != sessions_.end()) {
        entry_count_ -= vit->second.entries.size();
        if (evictions_ != nullptr)
          evictions_->Increment(vit->second.entries.size());
        sessions_.erase(vit);
      }
    }
    lru_.push_front(session_id);
    Session s;
    s.lru_pos = lru_.begin();
    it = sessions_.emplace(session_id, std::move(s)).first;
  } else {
    TouchLocked(session_id, &it->second);
  }
  Session& s = it->second;
  auto [eit, inserted] = s.entries.emplace(seq, guid);
  if (!inserted) {
    if (!(eit->second == guid)) {
      duplicates_++;
      if (duplicates_counter_ != nullptr) duplicates_counter_->Increment();
    }
    return;
  }
  entry_count_++;
  // Per-session window: drop the lowest sequences first — a client only
  // retries its most recent writes.
  while (s.entries.size() > options_.per_session) {
    s.entries.erase(s.entries.begin());
    entry_count_--;
    if (evictions_ != nullptr) evictions_->Increment();
  }
}

void SessionDedup::IncrementRejected() {
  if (rejected_ != nullptr) rejected_->Increment();
}

size_t SessionDedup::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t SessionDedup::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_count_;
}

uint64_t SessionDedup::duplicates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_;
}

void SessionDedup::TouchLocked(uint64_t session_id, Session* s) {
  lru_.erase(s->lru_pos);
  lru_.push_front(session_id);
  s->lru_pos = lru_.begin();
}

}  // namespace tardis
