// TardisOptions: construction-time configuration of a TARDiS site.

#ifndef TARDIS_CORE_OPTIONS_H_
#define TARDIS_CORE_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fault/env.h"
#include "obs/metrics.h"
#include "storage/wal.h"

namespace tardis {

/// Record storage backend of a site (DESIGN.md §12).
enum class RecordBackend {
  kDefault,  ///< derive from use_btree + dir (backwards compatible)
  kMem,      ///< std::map in memory (the TARDiS-MDB analogue)
  kBTree,    ///< disk-backed B+Tree (the TARDiS-BDB analogue); needs a dir
  kTrie,     ///< copy-on-write trie (fork-native, in-memory)
};

/// "mem" / "btree" / "trie" (kDefault resolves before naming).
inline const char* RecordBackendName(RecordBackend backend) {
  switch (backend) {
    case RecordBackend::kMem:
      return "mem";
    case RecordBackend::kBTree:
      return "btree";
    case RecordBackend::kTrie:
      return "trie";
    case RecordBackend::kDefault:
      break;
  }
  return "default";
}

/// Parses a backend name; kDefault on unknown input.
inline RecordBackend ParseRecordBackend(const std::string& name) {
  if (name == "mem") return RecordBackend::kMem;
  if (name == "btree") return RecordBackend::kBTree;
  if (name == "trie") return RecordBackend::kTrie;
  return RecordBackend::kDefault;
}

struct TardisOptions {
  /// Directory for the record store and commit log. Empty means fully
  /// in-memory and non-durable (handy for tests and benchmarks).
  std::string dir;

  /// Record persistence backend: true selects the disk-backed B+Tree
  /// (the TARDiS-BDB configuration); false the in-memory store (the
  /// TARDiS-MDB configuration). Ignored (forced false) when dir is empty.
  /// Superseded by `backend` when that is not kDefault.
  bool use_btree = true;

  /// Record backend selection. kDefault keeps the historical use_btree
  /// semantics; kTrie selects the copy-on-write trie, which additionally
  /// serves O(1) branch forks and O(diff) 3-way merges to the core when
  /// the store is fully in-memory (dir empty). kBTree without a dir
  /// degrades to kMem, mirroring use_btree.
  RecordBackend backend = RecordBackend::kDefault;

  /// Write the commit log (required for recovery). Needs a non-empty dir.
  bool enable_commit_log = true;

  /// kAsync trades durability for throughput (§6.5 "Asynchronous Flush");
  /// kSync fsyncs the commit log on every commit.
  Wal::FlushMode flush_mode = Wal::FlushMode::kAsync;

  /// Buffer pool capacity for the B+Tree backend, in 4 KiB pages
  /// (per shard when record_shards > 1).
  size_t cache_pages = 8192;

  /// Number of record-store partitions (§6.4's data-partitioning sketch:
  /// the State DAG stays collocated with the transaction manager; record
  /// payloads hash-shard across independent B+Trees, each with its own
  /// file and lock domain). 1 = unsharded. Requires use_btree and a dir.
  size_t record_shards = 1;

  /// Replication identity of this site.
  uint32_t site_id = 0;

  /// Run recovery from the commit log on open (when a log exists).
  bool recover_on_open = true;

  /// When > 0, a checkpoint is taken automatically once the commit log
  /// exceeds this many bytes (§6.5 "periodically takes non-blocking
  /// checkpoints"), truncating the log. The checkpoint runs on the
  /// committing thread; with FlushMode::kAsync it costs one DAG snapshot
  /// plus a sequential file write.
  uint64_t checkpoint_log_bytes = 0;

  /// File-operations environment for the record store, commit log and
  /// checkpoint files. Null selects the passthrough POSIX environment;
  /// tests install a fault::FaultEnv to inject disk errors, short writes
  /// and crash-restart cycles. Must outlive the store.
  fault::Env* env = nullptr;

  /// Metrics registry this site registers its counters/gauges/histograms
  /// in, labeled with site_id. Null means the store creates a private
  /// registry (reachable via TardisStore::metrics()). Share one registry
  /// across the store, replicator and transport of a process (tardisd
  /// does) to expose everything through a single endpoint.
  std::shared_ptr<obs::MetricsRegistry> metrics_registry;
};

}  // namespace tardis

#endif  // TARDIS_CORE_OPTIONS_H_
