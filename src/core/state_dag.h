// StateDag: the consistency layer's directed acyclic graph of logical
// database states (§4, §6.1).
//
// Responsibilities:
//  * creating states (normal commits append one parent; merge commits
//    several) and assigning monotone local ids;
//  * maintaining fork paths. A state's fork path contains (a, b) for every
//    ancestor fork state a reached through its b-th child. Fork entries
//    materialize when a state gains its *second* child: the new child gets
//    (parent, slot) and the existing child subtree is retroactively
//    annotated with (parent, 1). The retroactive pass runs inside the
//    commit critical section, before the new state is published, so
//    readers never observe a torn branch structure (records created before
//    the fork are filtered by the id comparison in descendantCheck);
//  * the leaf set, which read-state selection walks "from the leaves up";
//  * the promotion table id -> id left behind by DAG compression (§6.3),
//    resolved union-find style;
//  * mapping GlobalStateIds to states for the replicator.
//
// All structural mutation happens under mu_ (the commit lock). Read-side
// helpers (DescendantCheck) touch only immutable snapshots and atomics.

#ifndef TARDIS_CORE_STATE_DAG_H_
#define TARDIS_CORE_STATE_DAG_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/state.h"
#include "core/types.h"
#include "util/status.h"

namespace tardis {

class StateDag {
 public:
  /// Creates the DAG with its initial (empty-database) root state.
  explicit StateDag(uint32_t site_id = 0);

  StateDag(const StateDag&) = delete;
  StateDag& operator=(const StateDag&) = delete;

  /// The initial state.
  StatePtr root() const { return root_; }
  uint32_t site_id() const { return site_id_; }

  /// Figure 7: can a transaction whose read state is `reader` see records
  /// tagged with state `writer`? True iff writer is an ancestor-or-self of
  /// reader. Thread-safe without the DAG lock.
  static bool DescendantCheck(const State& writer, const State& reader);

  /// Appends a new state with the given parents (>=1; >1 for merges).
  /// `guid` must be unique; pass NextLocalGuid() for locally originated
  /// commits. Returns the published state. Caller must hold the commit
  /// lock (Lock()).
  StatePtr CreateStateLocked(const std::vector<StatePtr>& parents,
                             GlobalStateId guid, KeySet read_set,
                             KeySet write_set, bool is_merge);

  /// As CreateStateLocked but with a caller-chosen local id (recovery
  /// replays states under their original ids so record B-Tree keys stay
  /// valid, §6.5). Advances the id/seq counters past the given values.
  StatePtr CreateStateWithIdLocked(StateId id,
                                   const std::vector<StatePtr>& parents,
                                   GlobalStateId guid, KeySet read_set,
                                   KeySet write_set, bool is_merge);

  /// Fresh replication identity for a local commit.
  GlobalStateId NextLocalGuid();

  /// Raises the local sequence counter to at least `seq`. Crash recovery
  /// replays the durable commit log, which advances the counter past every
  /// *recovered* commit — but a commit whose log record was lost in the
  /// crash may already have escaped to peers, and reusing its sequence
  /// would mint a second, different state under the same guid. A deployment
  /// that knows an upper bound on the pre-crash sequence (e.g. from an
  /// out-of-band high-water mark) calls this after recovery to move new
  /// local guids past the ambiguous range.
  void AdvanceSeqFloor(uint64_t seq) {
    uint64_t cur = next_seq_.load();
    while (cur < seq && !next_seq_.compare_exchange_weak(cur, seq)) {
    }
  }

  /// Highest local sequence issued so far (0 = none). Session floor
  /// checks compare a client's read-your-writes floor for this site
  /// against it.
  uint64_t local_seq() const { return next_seq_.load(); }

  /// Raises the local state-id counter past `id`. Record B-Tree keys embed
  /// local ids, and a flushed record can outlive its commit-log entry in a
  /// crash; if a restarted incarnation reissued such an id for a commit
  /// whose own record persist then failed, reads would load the stale
  /// record under the aliased key. Recovery calls this with the largest id
  /// found in the record store.
  void AdvanceIdFloor(StateId id) {
    uint64_t expect = next_id_.load();
    while (expect <= id && !next_id_.compare_exchange_weak(expect, id + 1)) {
    }
  }

  /// Lock-held variants of Resolve/ResolveGuid (callers inside the commit
  /// critical section).
  StatePtr ResolveLocked(StateId id) const;
  StatePtr ResolveGuidLocked(const GlobalStateId& guid) const;

  /// The commit lock. Commit-state selection, state creation and version
  /// publication happen under it.
  std::mutex& Lock() { return mu_; }

  /// Snapshot of the current leaves (states without children), most
  /// recent first. Thread-safe.
  std::vector<StatePtr> Leaves() const;

  /// Resolves a (possibly garbage-collected) state id to the live state
  /// that took over its identity, following the promotion table.
  /// Returns nullptr if the id is unknown.
  StatePtr Resolve(StateId id) const;

  /// Lookup by replication identity (nullptr if absent). Follows
  /// promotions.
  StatePtr ResolveGuid(const GlobalStateId& guid) const;

  /// Breadth-first search upward from the leaves; invokes `visit` on each
  /// state in recency order until it returns true (state chosen) or the
  /// DAG is exhausted. Returns the chosen state or nullptr. Thread-safe.
  StatePtr BfsFromLeaves(
      const std::function<bool(const StatePtr&)>& visit) const;

  /// Deepest common ancestor of `states` — the fork point exposed by
  /// findForkPoints (§6.2). For states on the same branch returns the
  /// shallower one.
  StatePtr FindForkPoint(const std::vector<StatePtr>& states) const;
  /// As FindForkPoint, for callers already inside the commit critical
  /// section (e.g. the trie fast path picking a merge base).
  StatePtr FindForkPointLocked(const std::vector<StatePtr>& states) const;

  /// The *structured* set of fork points (Table 2): the deepest common
  /// ancestor of every pair of `states`, deduplicated and ordered deepest
  /// (most recent) first. The first element is the overall fork point the
  /// paper's examples use.
  std::vector<StatePtr> FindForkPoints(
      const std::vector<StatePtr>& states) const;

  /// Human-readable dump of the DAG (ids, guids, edges, fork paths,
  /// per-state write sets) for debugging and the interactive shell.
  std::string DebugString() const;
  /// Graphviz dot rendering of the DAG.
  std::string ToDot() const;

  /// Union of the write sets of all states strictly below `fork` on the
  /// branches leading to each of `tips` — the raw material of
  /// findConflictWrites. Keys written on >=2 of the branches are
  /// conflicting.
  KeySet FindConflictWrites(const StatePtr& fork,
                            const std::vector<StatePtr>& tips) const;

  // ---- GC support (used by GarbageCollector; all require Lock()) --------

  /// Unlinks `victim` from the DAG, records Promote(victim -> heir) and
  /// merges victim's write set into the heir (record promotion will move
  /// the actual versions). `heir` must be victim's most recent surviving
  /// child.
  void DeleteStateLocked(const StatePtr& victim, const StatePtr& heir);

  /// All live states, id order. Requires Lock().
  std::vector<StatePtr> AllStatesLocked() const;

  size_t state_count() const;
  size_t leaf_count() const;
  size_t promotion_table_size() const;
  uint64_t max_id() const { return next_id_.load() - 1; }

 private:
  void RetroactiveForkAnnotationLocked(const StatePtr& first_child,
                                       ForkPoint entry);

  const uint32_t site_id_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> next_seq_{0};

  mutable std::mutex mu_;  // commit lock: DAG structure + leaf set

  StatePtr root_;
  std::unordered_map<StateId, StatePtr> by_id_;
  std::unordered_map<GlobalStateId, StatePtr, GlobalStateIdHash> by_guid_;
  std::unordered_set<State*> leaves_;
  // victim id -> heir id. Resolve() follows chains union-find style with
  // path compression (chains are repointed at the live state they reach).
  mutable std::unordered_map<StateId, StateId> promoted_;
  mutable std::vector<StateId> visited_scratch_;  // guarded by mu_
};

}  // namespace tardis

#endif  // TARDIS_CORE_STATE_DAG_H_
