// CommitLog: the durability log of §6.5. At commit time TARDiS logs "the
// id of the corresponding commit state, its parent state(s) ids, and the
// transaction's write set keys"; we additionally log the replication
// identity (guid) so replicas can exchange states after recovery. Values
// are persisted separately in the record store, keyed by (key, state id).

#ifndef TARDIS_CORE_COMMIT_LOG_H_
#define TARDIS_CORE_COMMIT_LOG_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "storage/wal.h"
#include "util/status.h"

namespace tardis {

struct CommitLogEntry {
  StateId id = kInvalidStateId;
  GlobalStateId guid;
  std::vector<StateId> parent_ids;
  bool is_merge = false;
  std::vector<std::string> write_keys;
  /// Exactly-once client session tag (DESIGN.md §13): nonzero when the
  /// commit carried a `*S` header. Logged with the commit so the per-site
  /// dedup table survives crash-restart replay. Serialized as an optional
  /// trailing pair, so pre-session logs still decode (as 0/0).
  uint64_t session_id = 0;
  uint64_t session_seq = 0;
};

class CommitLog {
 public:
  static StatusOr<std::unique_ptr<CommitLog>> Open(const std::string& path,
                                                   Wal::FlushMode mode,
                                                   fault::Env* env = nullptr);

  Status Append(const CommitLogEntry& entry);
  /// Replays entries in append (= chronological = id) order. Stops cleanly
  /// at the first torn record.
  Status Replay(const std::function<Status(const CommitLogEntry&)>& fn);
  Status Sync() { return wal_->Sync(); }
  /// Discards the log after a checkpoint.
  Status Truncate() { return wal_->Truncate(); }
  /// Bytes appended since open/truncate (drives automatic checkpoints).
  uint64_t appended_bytes() const { return wal_->appended_bytes(); }

  static std::string Serialize(const CommitLogEntry& entry);
  static bool Deserialize(const Slice& payload, CommitLogEntry* entry);

 private:
  explicit CommitLog(std::unique_ptr<Wal> wal) : wal_(std::move(wal)) {}
  std::unique_ptr<Wal> wal_;
};

}  // namespace tardis

#endif  // TARDIS_CORE_COMMIT_LOG_H_
