// Encoding of record-version keys as stored in the record B-Tree: a
// length-prefixed user key followed by the fixed64 state id. Exact-match
// lookups only, so the encoding just needs injectivity.

#ifndef TARDIS_CORE_RECORD_CODEC_H_
#define TARDIS_CORE_RECORD_CODEC_H_

#include <string>

#include "core/types.h"
#include "util/coding.h"
#include "util/slice.h"

namespace tardis {

inline std::string EncodeRecordKey(const Slice& user_key, StateId sid) {
  std::string out;
  PutLengthPrefixed(&out, user_key);
  PutFixed64(&out, sid);
  return out;
}

inline bool DecodeRecordKey(const Slice& record_key, std::string* user_key,
                            StateId* sid) {
  Slice in = record_key;
  Slice k;
  if (!GetLengthPrefixed(&in, &k)) return false;
  if (in.size() != 8) return false;
  *user_key = k.ToString();
  *sid = DecodeFixed64(in.data());
  return true;
}

}  // namespace tardis

#endif  // TARDIS_CORE_RECORD_CODEC_H_
