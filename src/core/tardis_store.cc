#include "core/tardis_store.h"

#include <algorithm>

#include "core/record_codec.h"
#include "fault/fault_points.h"
#include "fault/fault_registry.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "storage/btree_record_store.h"
#include "storage/cowtrie/trie_record_store.h"
#include "storage/sharded_record_store.h"
#include "storage/memstore.h"
#include "util/clock.h"
#include "util/logging.h"

namespace tardis {

namespace {
constexpr const char* kCommitLogFile = "commit.log";
constexpr const char* kCheckpointFile = "checkpoint.log";
constexpr const char* kCheckpointTmpFile = "checkpoint.tmp";
constexpr const char* kRecordsFile = "records.db";

/// kDefault keeps the historical use_btree semantics; kBTree without a
/// dir degrades to kMem exactly as use_btree always has.
RecordBackend ResolveBackend(const TardisOptions& options) {
  RecordBackend backend = options.backend;
  if (backend == RecordBackend::kDefault) {
    backend =
        options.use_btree ? RecordBackend::kBTree : RecordBackend::kMem;
  }
  if (backend == RecordBackend::kBTree && options.dir.empty()) {
    backend = RecordBackend::kMem;
  }
  return backend;
}
}  // namespace

TardisStore::TardisStore(const TardisOptions& options)
    : options_(options),
      resolved_backend_(ResolveBackend(options)),
      dag_(options.site_id),
      metrics_(options.metrics_registry
                   ? options.metrics_registry
                   : std::make_shared<obs::MetricsRegistry>()),
      default_begin_(AncestorBegin()),
      default_end_(SerializabilityEnd()) {
  RegisterMetrics();
}

void TardisStore::RegisterMetrics() {
  const obs::LabelSet site{{"site", std::to_string(options_.site_id)}};
  commits_total_ = metrics_->RegisterCounter(
      "tardis_txn_commits_total", "Committed update transactions", site);
  aborts_total_ = metrics_->RegisterCounter(
      "tardis_txn_aborts_total", "Aborted transactions", site);
  read_only_commits_total_ = metrics_->RegisterCounter(
      "tardis_txn_read_only_commits_total",
      "Read-only commits (not added to the State DAG)", site);
  remote_applied_total_ = metrics_->RegisterCounter(
      "tardis_txn_remote_applied_total",
      "Replicated transactions applied from other sites", site);
  forks_total_ = metrics_->RegisterCounter(
      "tardis_txn_forks_total",
      "Commits (local or replicated) that forked the State DAG", site);
  merges_total_ = metrics_->RegisterCounter(
      "tardis_txn_merges_total", "Locally committed merge transactions",
      site);
  commit_latency_us_ = metrics_->RegisterHistogram(
      "tardis_commit_latency_us",
      "Commit critical path latency, microseconds", site);
  merge_latency_us_ = metrics_->RegisterHistogram(
      "tardis_merge_latency_us",
      "Merge transaction commit latency, microseconds", site);
  // Stage histograms for the request-latency breakdown (DESIGN.md §7):
  // labelled only by stage so `metrics cluster` can sum them across
  // sites and partitions.
  stage_commit_select_us_ = obs::RegisterStageHistogram(metrics_.get(),
                                                        "commit_select");
  stage_wal_fsync_us_ = obs::RegisterStageHistogram(metrics_.get(),
                                                    "wal_fsync");
  // DAG shape gauges read the live structures at collect time; no shadow
  // counters to keep in sync.
  metrics_->RegisterCallbackGauge(
      "tardis_dag_states", "Live states in the State DAG",
      [this] { return static_cast<double>(dag_.state_count()); }, site, this);
  metrics_->RegisterCallbackGauge(
      "tardis_dag_leaves", "Branch tips (states without children)",
      [this] { return static_cast<double>(dag_.leaf_count()); }, site, this);
  metrics_->RegisterCallbackGauge(
      "tardis_dag_promotions",
      "Promotion-table entries left behind by DAG compression",
      [this] { return static_cast<double>(dag_.promotion_table_size()); },
      site, this);
  // Info metric: constant 1, the interesting part is the backend label
  // (Prometheus *_info convention).
  obs::LabelSet backend_labels = site;
  backend_labels.emplace_back("backend", backend_name());
  metrics_->RegisterCallbackGauge(
      "tardis_store_backend",
      "Record backend of this site (always 1; see the backend label)",
      [] { return 1.0; }, backend_labels, this);
  // Process-wide fault-injection counters (zero unless a test arms
  // faults); exported here so every site's registry sees them.
  fault::FaultRegistry::Global().BindMetrics(metrics_.get());
  // Exactly-once session dedup (DESIGN.md §13). Callback gauges are
  // owner-scoped to this store and dropped in the destructor.
  session_dedup_.RegisterMetrics(metrics_.get(), this);
}

TardisStore::~TardisStore() {
  if (gc_) gc_->StopBackground();
  // The registry may be shared and outlive this site: detach the gauges
  // that capture `this` before the DAG goes away.
  metrics_->DropCallbacks(this);
  // The trie's destructor drops its own callback gauges, so it must run
  // while metrics_ (declared later, destroyed earlier) is still alive.
  record_store_.reset();
  trie_.reset();
}

StatusOr<std::unique_ptr<TardisStore>> TardisStore::Open(
    const TardisOptions& options) {
  std::unique_ptr<TardisStore> store(new TardisStore(options));

  const bool durable = !options.dir.empty();
  fault::Env* env = fault::ResolveEnv(options.env);
  if (durable) {
    TARDIS_RETURN_IF_ERROR(env->CreateDir(options.dir));
  }

  const RecordBackend backend = store->resolved_backend_;
  if (backend == RecordBackend::kTrie) {
    // One trie serves both the flat RecordStore keyspace and (below, when
    // fully in-memory) the per-state branch fast path.
    store->trie_ = std::make_shared<CowTrie>(
        store->metrics_.get(),
        obs::LabelSet{{"site", std::to_string(options.site_id)}});
    store->record_store_ = std::make_unique<TrieRecordStore>(store->trie_);
  } else if (durable && backend == RecordBackend::kBTree &&
             options.record_shards > 1) {
    auto rs = ShardedRecordStore::Open(options.dir, options.record_shards,
                                       options.cache_pages, env);
    if (!rs.ok()) return rs.status();
    store->record_store_ = std::move(*rs);
  } else if (durable && backend == RecordBackend::kBTree) {
    auto rs =
        BTreeRecordStore::Open(options.dir + "/" + kRecordsFile,
                               options.cache_pages, env);
    if (!rs.ok()) return rs.status();
    store->record_store_ = std::move(*rs);
  } else {
    store->record_store_ = std::make_unique<MemRecordStore>();
  }

  if (durable && options.enable_commit_log) {
    auto log = CommitLog::Open(options.dir + "/" + kCommitLogFile,
                               options.flush_mode, env);
    if (!log.ok()) return log.status();
    store->commit_log_ = std::move(*log);
  }

  store->gc_ = std::make_unique<GarbageCollector>(
      &store->dag_, &store->kvmap_, store->record_store_.get(),
      store->metrics_.get());
  if (store->trie_ != nullptr) {
    store->gc_->SetBranchStore(store->trie_.get());
  }

  if (durable && options.recover_on_open) {
    TARDIS_RETURN_IF_ERROR(store->Recover());
  }

  // Branch fast path: only for the fully in-memory trie configuration.
  // With a dir, recovery re-creates states whose record values load
  // lazily from disk — branch snapshots cannot represent those, so the
  // durable trie configuration serves records only.
  if (store->trie_ != nullptr && !durable) {
    Status s = store->trie_->CreateBranch(store->dag_.root()->id());
    if (s.ok()) {
      store->trie_fast_path_.store(true, std::memory_order_relaxed);
    } else {
      TARDIS_ERROR("trie root branch: %s", s.ToString().c_str());
    }
  }
  return store;
}

std::unique_ptr<ClientSession> TardisStore::CreateSession() {
  return std::unique_ptr<ClientSession>(new ClientSession());
}

// ---- begin ------------------------------------------------------------------

StatusOr<TxnPtr> TardisStore::Begin(ClientSession* session,
                                    BeginConstraintPtr begin) {
  TARDIS_TRACE_SCOPE("txn", "begin");
  if (session == nullptr) return Status::InvalidArgument("null session");
  const BeginConstraintPtr& bc = begin ? begin : default_begin_;

  TxnPtr txn(new Transaction(this, session, Transaction::Mode::kSingle));
  txn->ctx_.session_last_commit = session->last_commit_;

  // Fast path: a client extending its own branch reads from its last
  // committed state while that state is still a leaf — no DAG search.
  if (bc->PrefersSessionTip() && session->last_commit_ != nullptr) {
    StatePtr tip = session->last_commit_;
    // children() is guarded by the DAG lock; an unlocked peek would race
    // with a concurrent committer appending to the tip.
    std::lock_guard<std::mutex> guard(dag_.Lock());
    if (tip->children().empty() && !tip->marked.load() &&
        !tip->deleted.load()) {
      tip->PinAsReadState();
      txn->ctx_.read_states.push_back(std::move(tip));
      return txn;
    }
  }

  for (int attempt = 0; attempt < 64; attempt++) {
    // §6.1.1: BFS from the leaves up; the first (most recent) state that
    // satisfies the begin constraint becomes the read state. States above
    // a ceiling (marked) are skipped.
    StatePtr chosen = dag_.BfsFromLeaves([&](const StatePtr& s) {
      if (s->marked.load() || s->deleted.load()) return false;
      return bc->Satisfies(txn->ctx_, *s);
    });
    if (chosen == nullptr) {
      return Status::Aborted("no state satisfies begin constraint " +
                             bc->name());
    }
    // Pin atomically with a liveness re-check so a concurrent GC pass
    // cannot delete the state between selection and pinning.
    std::lock_guard<std::mutex> guard(dag_.Lock());
    if (chosen->deleted.load() || chosen->marked.load()) continue;
    chosen->PinAsReadState();
    txn->ctx_.read_states.push_back(std::move(chosen));
    return txn;
  }
  return Status::Busy("could not pin a read state");
}

StatusOr<TxnPtr> TardisStore::BeginMerge(ClientSession* session,
                                         BeginConstraintPtr begin,
                                         size_t max_parents) {
  TARDIS_TRACE_SCOPE("txn", "begin_merge");
  if (session == nullptr) return Status::InvalidArgument("null session");
  const BeginConstraintPtr bc = begin ? begin : AnyBegin();

  TxnPtr txn(new Transaction(this, session, Transaction::Mode::kMerge));
  txn->ctx_.session_last_commit = session->last_commit_;

  for (int attempt = 0; attempt < 64; attempt++) {
    std::vector<StatePtr> tips;
    for (const StatePtr& leaf : dag_.Leaves()) {
      if (leaf->marked.load() || leaf->deleted.load()) continue;
      if (!bc->Satisfies(txn->ctx_, *leaf)) continue;
      tips.push_back(leaf);
      if (max_parents != 0 && tips.size() == max_parents) break;
    }
    if (tips.empty()) {
      return Status::Aborted("no leaf satisfies begin constraint " +
                             bc->name());
    }
    std::lock_guard<std::mutex> guard(dag_.Lock());
    bool ok = true;
    for (const StatePtr& t : tips) {
      if (t->deleted.load()) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (const StatePtr& t : tips) {
      t->PinAsReadState();
      txn->ctx_.read_states.push_back(t);
    }
    return txn;
  }
  return Status::Busy("could not pin merge read states");
}

// ---- reads ------------------------------------------------------------------

Status TardisStore::LoadValue(const Slice& key, const VersionEntry& entry,
                              std::string* value) {
  if (entry.value != nullptr) {
    *value = *entry.value;
    return Status::OK();
  }
  // Post-recovery lazy load from the record store.
  return record_store_->Get(EncodeRecordKey(key, entry.sid), value);
}

Status TardisStore::TxnGet(Transaction* t, const Slice& key,
                           std::string* value) {
  if (t->ctx_.read_states.empty()) {
    return Status::InvalidArgument("transaction has no read state");
  }
  // Fast path: the branch *is* the visibility set — one O(key) trie walk,
  // no descendant checks. The read state is pinned, so its branch cannot
  // be released underneath us.
  if (trie_fast_path()) {
    return trie_->Get(t->ctx_.read_states[0]->id(), key, value);
  }
  auto entry = kvmap_.GetVisible(key, *t->ctx_.read_states[0]);
  if (!entry.ok()) return entry.status();
  return LoadValue(key, *entry, value);
}

Status TardisStore::TxnGetForId(Transaction* t, const Slice& key,
                                StateId sid, std::string* value) {
  StatePtr state = dag_.Resolve(sid);
  if (state == nullptr) {
    return Status::Unavailable("state " + std::to_string(sid) +
                               " unknown or garbage-collected");
  }
  if (trie_fast_path()) {
    return trie_->Get(state->id(), key, value);
  }
  auto entry = kvmap_.GetVisible(key, *state);
  if (!entry.ok()) return entry.status();
  return LoadValue(key, *entry, value);
}

// ---- trie fast path ---------------------------------------------------------

void TardisStore::DisableTrieFastPath(const char* what, const Status& s) {
  if (!trie_fast_path_.exchange(false, std::memory_order_relaxed)) return;
  // Reads fall back to the key-version map, which is maintained either
  // way; only the O(1)-fork/O(diff)-merge acceleration is lost.
  TARDIS_ERROR("trie fast path disabled (%s): %s", what,
               s.ToString().c_str());
}

Status TardisStore::TrieCommitLocked(
    const StatePtr& new_state, const std::vector<StatePtr>& parents,
    const std::map<std::string, std::shared_ptr<const std::string>>&
        writes) {
  const BranchStore::BranchId id = new_state->id();
  if (parents.size() == 1) {
    TARDIS_RETURN_IF_ERROR(trie_->Fork(parents[0]->id(), id));
  } else {
    // Merge state: fork the first parent's branch, then fold in each
    // remaining parent with a 3-way merge against the overall fork point.
    // With monotone state-id tags and no deletes this reproduces the
    // key-version map's descending-id visibility exactly; the merge
    // transaction's own writes (the application's conflict resolutions)
    // land afterwards with the newest tag and override the defaults.
    StatePtr base = dag_.FindForkPointLocked(parents);
    if (base == nullptr) {
      return Status::Corruption("merge parents share no ancestor");
    }
    TARDIS_RETURN_IF_ERROR(trie_->Fork(parents[0]->id(), id));
    for (size_t i = 1; i < parents.size(); i++) {
      auto merged = trie_->Merge(base->id(), parents[i]->id(), id, id,
                                 /*resolve=*/nullptr);
      if (!merged.ok()) return merged.status();
    }
  }
  for (const auto& [key, value] : writes) {
    TARDIS_RETURN_IF_ERROR(trie_->Put(id, key, value, id));
  }
  return Status::OK();
}

bool TardisStore::TrieConflictWrites(const StatePtr& fork,
                                     const std::vector<StatePtr>& tips,
                                     std::vector<std::string>* out) {
  if (!trie_fast_path()) return false;
  // A key's tag differs from the fork point's iff some state below the
  // fork wrote it, so one O(diff) trie diff per tip replaces the DAG
  // write-set walk.
  std::map<std::string, int> written_by_branches;
  for (const StatePtr& tip : tips) {
    Status s = trie_->Diff(
        fork->id(), tip->id(),
        [&written_by_branches](const Slice& key, const BranchStore::Version&,
                               const BranchStore::Version&) {
          written_by_branches[key.ToString()]++;
        });
    if (!s.ok()) return false;
  }
  out->clear();
  for (const auto& [key, count] : written_by_branches) {
    if (count >= 2) out->push_back(key);
  }
  return true;
}

// ---- commit -----------------------------------------------------------------

Status TardisStore::CommitTxn(Transaction* t, const EndConstraintPtr& ec_in) {
  TARDIS_TRACE_SCOPE("txn", "commit");
  const uint64_t commit_start_us = NowMicros();
  const EndConstraintPtr& ec = ec_in ? ec_in : default_end_;

  // Read-only transactions are not added to the State DAG (§6.1.4) and
  // need no validation: their snapshot is a committed state. A *merge*
  // over several branches is the exception — even with nothing to write
  // (no conflicting keys), its entire purpose is to produce the joined
  // state, so it always commits into the DAG.
  const bool joins_branches = t->mode() == Transaction::Mode::kMerge &&
                              t->ctx_.read_states.size() > 1;
  if (t->write_cache_.empty() && !joins_branches) {
    t->Finish();
    read_only_commits_total_->Increment();
    return Status::OK();
  }

  StatePtr new_state;
  bool forked = false;
  {
    std::lock_guard<std::mutex> guard(dag_.Lock());
    TARDIS_TRACE_SCOPE("txn", "ripple_down");

    // §6.1.2 / Figure 6: from each read state, ripple down through
    // concurrently committed states that the end constraint tolerates;
    // stop before the first one it does not.
    std::vector<StatePtr> parents;
    {
      obs::StageTimer select_stage(stage_commit_select_us_, "commit_select");
      for (const StatePtr& read_state : t->ctx_.read_states) {
        StatePtr cand = read_state;
        while (true) {
          StatePtr next;
          for (const StatePtr& child : cand->children()) {
            if (ec->StepOk(t->ctx_, *child)) {
              next = child;
              break;
            }
          }
          if (next == nullptr) break;
          cand = std::move(next);
        }
        if (!ec->FinalOk(t->ctx_, *cand)) {
          // The structural part of the constraint is unsatisfiable: abort.
          // (Counter increments are lock-free, so doing this inside the
          // commit critical section costs one relaxed fetch_add.)
          AbortTxn(t);
          return Status::Aborted("end constraint " + ec->name() +
                                 " unsatisfiable at state " +
                                 std::to_string(cand->id()));
        }
        if (std::find(parents.begin(), parents.end(), cand) ==
            parents.end()) {
          parents.push_back(std::move(cand));
        }
      }

      for (const StatePtr& p : parents) {
        if (!p->children().empty()) forked = true;
      }
    }

    const bool is_merge = parents.size() > 1;
    new_state = dag_.CreateStateLocked(parents, dag_.NextLocalGuid(),
                                       t->ctx_.reads, t->ctx_.writes,
                                       is_merge);
    if (t->session_tag_id_ != 0) {
      new_state->set_session_tag(t->session_tag_id_, t->session_tag_seq_);
    }

    // Publish versions before releasing the commit lock so any
    // transaction that selects new_state as its read state sees them.
    for (const auto& [key, value] : t->write_cache_) {
      kvmap_.AddVersion(key, new_state, value);
    }

    if (trie_fast_path()) {
      Status ts = TrieCommitLocked(new_state, parents, t->write_cache_);
      if (!ts.ok()) DisableTrieFastPath("commit", ts);
    }

    if (commit_log_) {
      CommitLogEntry entry;
      entry.id = new_state->id();
      entry.guid = new_state->guid();
      for (const StatePtr& p : new_state->parents()) {
        entry.parent_ids.push_back(p->id());
      }
      entry.is_merge = is_merge;
      for (const auto& [key, value] : t->write_cache_) {
        entry.write_keys.push_back(key);
      }
      entry.session_id = t->session_tag_id_;
      entry.session_seq = t->session_tag_seq_;
      obs::StageTimer fsync_stage(stage_wal_fsync_us_, "wal_fsync");
      Status s = commit_log_->Append(entry);
      if (!s.ok()) {
        // Availability over durability: the commit stands in memory, but
        // the on-disk log no longer covers it — degrade so Flush and
        // Checkpoint stop promising durability (§6.5).
        commit_log_degraded_.store(true, std::memory_order_relaxed);
        TARDIS_ERROR("commit log append: %s", s.ToString().c_str());
      }
    }
  }

  // Persistence of the record payloads happens outside the critical
  // section; reads are already served from the version entries.
  for (const auto& [key, value] : t->write_cache_) {
    Status s = record_store_->Put(EncodeRecordKey(key, new_state->id()),
                                  *value);
    if (!s.ok()) {
      commit_log_degraded_.store(true, std::memory_order_relaxed);
      TARDIS_ERROR("record persist: %s", s.ToString().c_str());
    }
  }

  t->session_->last_commit_ = new_state;

  // The dedup entry becomes visible only after the commit (and its log
  // entry) exist: a concurrent retry either misses it and re-executes
  // against the same (sid, seq) — caught as a duplicate — or hits it and
  // gets the original state back.
  if (t->session_tag_id_ != 0) {
    session_dedup_.Record(t->session_tag_id_, t->session_tag_seq_,
                          new_state->guid());
  }

  // Automatic checkpointing (§6.5): once the commit log grows past the
  // configured bound, snapshot the DAG and truncate it. At most one
  // committer runs the checkpoint; the others proceed.
  if (commit_log_ && options_.checkpoint_log_bytes > 0 &&
      commit_log_->appended_bytes() > options_.checkpoint_log_bytes &&
      !checkpoint_running_.exchange(true)) {
    Status s = Checkpoint();
    if (!s.ok()) TARDIS_ERROR("auto checkpoint: %s", s.ToString().c_str());
    checkpoint_running_.store(false);
  }

  CommitRecord record;
  if (commit_cb_) {
    record.guid = new_state->guid();
    for (const StatePtr& p : new_state->parents()) {
      record.parent_guids.push_back(p->guid());
    }
    record.is_merge = new_state->is_merge();
    for (const auto& [key, value] : t->write_cache_) {
      record.writes.emplace_back(key, value);
    }
    record.session_id = t->session_tag_id_;
    record.session_seq = t->session_tag_seq_;
  }

  const bool was_merge = t->mode() == Transaction::Mode::kMerge;
  t->Finish();
  commits_total_->Increment();
  if (forked) {
    forks_total_->Increment();
    TARDIS_TRACE_INSTANT("txn", "fork");
  }
  if (was_merge) {
    merges_total_->Increment();
    TARDIS_TRACE_INSTANT("txn", "merge");
  }
  (was_merge ? merge_latency_us_ : commit_latency_us_)
      ->Observe(NowMicros() - commit_start_us);

  if (commit_cb_) commit_cb_(record);
  return Status::OK();
}

void TardisStore::AbortTxn(Transaction* t) {
  t->Finish();
  aborts_total_->Increment();
}

// ---- replication -------------------------------------------------------------

Status TardisStore::ApplyRemote(const CommitRecord& record) {
  TARDIS_TRACE_SCOPE("repl", "apply");
  StatePtr new_state;
  bool forked = false;
  {
    std::lock_guard<std::mutex> guard(dag_.Lock());
    if (dag_.ResolveGuidLocked(record.guid) != nullptr) {
      return Status::OK();  // duplicate delivery: idempotent
    }
    std::vector<StatePtr> parents;
    for (const GlobalStateId& pg : record.parent_guids) {
      StatePtr p = dag_.ResolveGuidLocked(pg);
      if (p == nullptr) {
        return Status::Unavailable("parent state " + pg.ToString() +
                                   " not yet replicated");
      }
      parents.push_back(std::move(p));
    }
    // A remote commit whose parent already has local children forks the
    // DAG here exactly as a conflicting local commit would.
    for (const StatePtr& p : parents) {
      if (!p->children().empty()) forked = true;
    }
    KeySet writes;
    for (const auto& [key, value] : record.writes) writes.Add(key);

    new_state = dag_.CreateStateLocked(parents, record.guid, KeySet(),
                                       std::move(writes), record.is_merge);
    if (record.session_id != 0) {
      new_state->set_session_tag(record.session_id, record.session_seq);
    }
    for (const auto& [key, value] : record.writes) {
      kvmap_.AddVersion(key, new_state, value);
    }
    if (trie_fast_path()) {
      const std::map<std::string, std::shared_ptr<const std::string>>
          write_map(record.writes.begin(), record.writes.end());
      Status ts = TrieCommitLocked(new_state, parents, write_map);
      if (!ts.ok()) DisableTrieFastPath("apply_remote", ts);
    }
    if (commit_log_) {
      CommitLogEntry entry;
      entry.id = new_state->id();
      entry.guid = new_state->guid();
      for (const StatePtr& p : new_state->parents()) {
        entry.parent_ids.push_back(p->id());
      }
      entry.is_merge = record.is_merge;
      for (const auto& [key, value] : record.writes) {
        entry.write_keys.push_back(key);
      }
      entry.session_id = record.session_id;
      entry.session_seq = record.session_seq;
      obs::StageTimer fsync_stage(stage_wal_fsync_us_, "wal_fsync");
      Status s = commit_log_->Append(entry);
      if (!s.ok()) {
        commit_log_degraded_.store(true, std::memory_order_relaxed);
        TARDIS_ERROR("commit log append: %s", s.ToString().c_str());
      }
    }
  }
  for (const auto& [key, value] : record.writes) {
    Status s = record_store_->Put(EncodeRecordKey(key, new_state->id()),
                                  *value);
    if (!s.ok()) {
      commit_log_degraded_.store(true, std::memory_order_relaxed);
      TARDIS_ERROR("record persist: %s", s.ToString().c_str());
    }
  }
  if (record.session_id != 0) {
    // A gossiped tagged commit extends dedup coverage to this site: a
    // client failing over here with the same (sid, seq) gets the original
    // state, not a second commit.
    session_dedup_.Record(record.session_id, record.session_seq,
                          record.guid);
  }
  remote_applied_total_->Increment();
  if (forked) {
    forks_total_->Increment();
    TARDIS_TRACE_INSTANT("repl", "fork");
  }
  return Status::OK();
}

// ---- GC -----------------------------------------------------------------------

void TardisStore::PlaceCeiling(ClientSession* session) {
  if (session == nullptr || session->last_commit_ == nullptr) return;
  gc_->PlaceCeiling(session->last_commit_);
}

// ---- durability ----------------------------------------------------------------

Status TardisStore::Flush() {
  if (commit_log_degraded()) {
    return Status::IOError(
        "store is durability-degraded: a commit log append or record "
        "persist failed; reopen to recover");
  }
  TARDIS_RETURN_IF_ERROR(record_store_->Sync());
  if (commit_log_) TARDIS_RETURN_IF_ERROR(commit_log_->Sync());
  return Status::OK();
}

Status TardisStore::Checkpoint() {
  if (options_.dir.empty()) {
    return Status::NotSupported("checkpoint requires a durable store");
  }
  if (commit_log_degraded()) {
    return Status::IOError(
        "refusing checkpoint while durability-degraded: the snapshot "
        "would cover states whose records were never persisted");
  }
  // (i) flush outstanding record writes, (ii) snapshot the DAG, (iii)
  // truncate the commit log it makes redundant (§6.5).
  TARDIS_RETURN_IF_ERROR(record_store_->Sync());

  std::vector<CommitLogEntry> snapshot = SnapshotDag();

  fault::Env* env = fault::ResolveEnv(options_.env);
  const std::string tmp = options_.dir + "/" + kCheckpointTmpFile;
  const std::string final_path = options_.dir + "/" + kCheckpointFile;
  TARDIS_RETURN_IF_ERROR(env->RemoveFile(tmp));
  {
    auto ckpt = CommitLog::Open(tmp, Wal::FlushMode::kAsync, options_.env);
    if (!ckpt.ok()) return ckpt.status();
    for (const CommitLogEntry& entry : snapshot) {
      TARDIS_RETURN_IF_ERROR((*ckpt)->Append(entry));
    }
    TARDIS_RETURN_IF_ERROR((*ckpt)->Sync());
  }
  TARDIS_FAULT_POINT("store.checkpoint.rename");
  TARDIS_RETURN_IF_ERROR(env->RenameFile(tmp, final_path));
  if (commit_log_) TARDIS_RETURN_IF_ERROR(commit_log_->Truncate());
  return Status::OK();
}

// ---- recovery -------------------------------------------------------------------

Status TardisStore::RecoverEntry(const CommitLogEntry& entry,
                                 bool check_persistence, bool* stop) {
  if (*stop) return Status::OK();

  if (check_persistence) {
    // §6.5: a transaction whose write set is only partially persistent is
    // discarded along with everything after it in the log.
    for (const std::string& key : entry.write_keys) {
      std::string scratch;
      if (!record_store_->Get(EncodeRecordKey(key, entry.id), &scratch)
               .ok()) {
        TARDIS_WARN(
            "recovery: log entry id=%llu guid=%s dropped (record for '%s' "
            "not persistent); discarding the log suffix",
            static_cast<unsigned long long>(entry.id),
            entry.guid.ToString().c_str(), key.c_str());
        *stop = true;
        return Status::OK();
      }
    }
  }

  std::lock_guard<std::mutex> guard(dag_.Lock());
  if (dag_.ResolveLocked(entry.id) != nullptr) return Status::OK();
  std::vector<StatePtr> parents;
  for (StateId pid : entry.parent_ids) {
    StatePtr p = dag_.ResolveLocked(pid);
    if (p == nullptr) {
      TARDIS_WARN(
          "recovery: log entry id=%llu guid=%s dropped (parent id=%llu "
          "missing); discarding the log suffix",
          static_cast<unsigned long long>(entry.id),
          entry.guid.ToString().c_str(),
          static_cast<unsigned long long>(pid));
      *stop = true;
      return Status::OK();
    }
    parents.push_back(std::move(p));
  }
  KeySet writes;
  for (const std::string& k : entry.write_keys) writes.Add(k);
  StatePtr state = dag_.CreateStateWithIdLocked(
      entry.id, parents, entry.guid, KeySet(), std::move(writes),
      entry.is_merge);
  if (entry.session_id != 0) {
    // Rebuild the exactly-once dedup table from the replayed log, so a
    // client retrying across this site's crash-restart still dedups.
    state->set_session_tag(entry.session_id, entry.session_seq);
    session_dedup_.Record(entry.session_id, entry.session_seq, entry.guid);
  }
  // Values load lazily from the record store on first read.
  for (const std::string& k : entry.write_keys) {
    kvmap_.AddVersion(k, state, nullptr);
  }
  return Status::OK();
}

std::vector<CommitLogEntry> TardisStore::SnapshotDag() {
  std::vector<CommitLogEntry> snapshot;
  std::lock_guard<std::mutex> guard(dag_.Lock());
  for (const StatePtr& s : dag_.AllStatesLocked()) {
    if (s->parents().empty()) continue;  // root is implicit
    CommitLogEntry entry;
    entry.id = s->id();
    entry.guid = s->guid();
    for (const StatePtr& p : s->parents()) {
      entry.parent_ids.push_back(p->id());
    }
    entry.is_merge = s->is_merge();
    entry.write_keys = s->write_set().keys();
    entry.session_id = s->session_id();
    entry.session_seq = s->session_seq();
    snapshot.push_back(std::move(entry));
  }
  return snapshot;
}

Status TardisStore::Recover() {
  bool stop = false;
  fault::Env* env = fault::ResolveEnv(options_.env);
  const std::string ckpt_path = options_.dir + "/" + kCheckpointFile;
  if (env->FileExists(ckpt_path)) {
    auto ckpt = CommitLog::Open(ckpt_path, Wal::FlushMode::kAsync,
                                options_.env);
    if (!ckpt.ok()) return ckpt.status();
    TARDIS_RETURN_IF_ERROR(
        (*ckpt)->Replay([this, &stop](const CommitLogEntry& entry) {
          return RecoverEntry(entry, /*check_persistence=*/false, &stop);
        }));
  }
  stop = false;
  if (commit_log_) {
    TARDIS_RETURN_IF_ERROR(
        commit_log_->Replay([this, &stop](const CommitLogEntry& entry) {
          return RecoverEntry(entry, /*check_persistence=*/true, &stop);
        }));
    if (stop) {
      // A suffix of the log was discarded (records lost in the crash).
      // Those entries are dead forever, but left in place they would sit
      // between the valid history and everything appended from now on,
      // and the *next* recovery would stop at them — silently dropping
      // commits that were flushed after this reopen. Rewrite the log to
      // exactly the surviving history.
      std::vector<CommitLogEntry> snapshot = SnapshotDag();
      TARDIS_WARN(
          "recovery: rewriting commit log with the %zu surviving states",
          snapshot.size());
      TARDIS_RETURN_IF_ERROR(commit_log_->Truncate());
      for (const CommitLogEntry& entry : snapshot) {
        TARDIS_RETURN_IF_ERROR(commit_log_->Append(entry));
      }
      TARDIS_RETURN_IF_ERROR(commit_log_->Sync());
    }
  }
  // A flushed record can outlive its commit-log entry (the crash took the
  // log tail but not the B-Tree pages). Reissuing such a record's state id
  // would alias its B-Tree key: if the new commit's own record persist
  // then failed, reads would load the stale value. Move the id counter
  // past every id the record store still knows.
  if (record_store_) {
    StateId max_sid = 0;
    TARDIS_RETURN_IF_ERROR(record_store_->ForEachKey(
        [&max_sid](const Slice& record_key) {
          std::string user_key;
          StateId sid = 0;
          if (DecodeRecordKey(record_key, &user_key, &sid) && sid > max_sid) {
            max_sid = sid;
          }
          return Status::OK();
        }));
    dag_.AdvanceIdFloor(max_sid);
  }
  return Status::OK();
}

StoreStats TardisStore::stats() const {
  StoreStats s;
  s.commits = commits_total_->Value();
  s.aborts = aborts_total_->Value();
  s.read_only_commits = read_only_commits_total_->Value();
  s.remote_applied = remote_applied_total_->Value();
  s.branches_created = forks_total_->Value();
  s.merges_committed = merges_total_->Value();
  return s;
}

}  // namespace tardis
