#include "core/commit_log.h"

#include "util/coding.h"

namespace tardis {

StatusOr<std::unique_ptr<CommitLog>> CommitLog::Open(const std::string& path,
                                                     Wal::FlushMode mode,
                                                     fault::Env* env) {
  auto wal = Wal::Open(path, mode, env);
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<CommitLog>(new CommitLog(std::move(*wal)));
}

std::string CommitLog::Serialize(const CommitLogEntry& entry) {
  std::string out;
  PutVarint64(&out, entry.id);
  PutVarint64(&out, entry.guid.site);
  PutVarint64(&out, entry.guid.seq);
  PutVarint64(&out, entry.parent_ids.size());
  for (StateId p : entry.parent_ids) PutVarint64(&out, p);
  out.push_back(entry.is_merge ? 1 : 0);
  PutVarint64(&out, entry.write_keys.size());
  for (const std::string& k : entry.write_keys) {
    PutLengthPrefixed(&out, Slice(k));
  }
  // Optional session tail: only written when tagged, so untagged entries
  // keep the original byte layout.
  if (entry.session_id != 0) {
    PutVarint64(&out, entry.session_id);
    PutVarint64(&out, entry.session_seq);
  }
  return out;
}

bool CommitLog::Deserialize(const Slice& payload, CommitLogEntry* entry) {
  Slice in = payload;
  uint64_t v = 0;
  if (!GetVarint64(&in, &v)) return false;
  entry->id = v;
  if (!GetVarint64(&in, &v)) return false;
  entry->guid.site = static_cast<uint32_t>(v);
  if (!GetVarint64(&in, &v)) return false;
  entry->guid.seq = v;
  uint64_t nparents = 0;
  if (!GetVarint64(&in, &nparents)) return false;
  entry->parent_ids.clear();
  for (uint64_t i = 0; i < nparents; i++) {
    if (!GetVarint64(&in, &v)) return false;
    entry->parent_ids.push_back(v);
  }
  if (in.empty()) return false;
  entry->is_merge = in[0] != 0;
  in.remove_prefix(1);
  uint64_t nkeys = 0;
  if (!GetVarint64(&in, &nkeys)) return false;
  entry->write_keys.clear();
  for (uint64_t i = 0; i < nkeys; i++) {
    Slice k;
    if (!GetLengthPrefixed(&in, &k)) return false;
    entry->write_keys.push_back(k.ToString());
  }
  entry->session_id = 0;
  entry->session_seq = 0;
  if (in.empty()) return true;  // pre-session entry
  if (!GetVarint64(&in, &entry->session_id)) return false;
  if (!GetVarint64(&in, &entry->session_seq)) return false;
  return in.empty() && entry->session_id != 0;
}

Status CommitLog::Append(const CommitLogEntry& entry) {
  return wal_->Append(Slice(Serialize(entry)));
}

Status CommitLog::Replay(
    const std::function<Status(const CommitLogEntry&)>& fn) {
  return wal_->ReadAll([&fn](const Slice& payload) {
    CommitLogEntry entry;
    if (!Deserialize(payload, &entry)) {
      return Status::Corruption("undecodable commit log entry");
    }
    return fn(entry);
  });
}

}  // namespace tardis
