#include "core/state_dag.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <queue>

#include "obs/trace.h"

namespace tardis {

namespace {
/// Every replica names the initial empty-database state identically so
/// that replicated transactions rooted at it resolve everywhere.
const GlobalStateId kRootGuid{0xFFFFFFFFu, 0};
}  // namespace

StateDag::StateDag(uint32_t site_id) : site_id_(site_id) {
  root_ = std::make_shared<State>(next_id_.fetch_add(1), kRootGuid);
  by_id_[root_->id()] = root_;
  by_guid_[kRootGuid] = root_;
  leaves_.insert(root_.get());
}

bool StateDag::DescendantCheck(const State& writer, const State& reader) {
  // Figure 7, verbatim: id equality, id ordering, then fork-path subset.
  if (writer.id() == reader.id()) return true;
  if (writer.id() > reader.id()) return false;
  const auto wp = writer.fork_path();
  const auto rp = reader.fork_path();
  return wp->SubsetOf(*rp);
}

GlobalStateId StateDag::NextLocalGuid() {
  return GlobalStateId{site_id_, next_seq_.fetch_add(1) + 1};
}

StatePtr StateDag::CreateStateLocked(const std::vector<StatePtr>& parents,
                                     GlobalStateId guid, KeySet read_set,
                                     KeySet write_set, bool is_merge) {
  return CreateStateWithIdLocked(next_id_.fetch_add(1), parents, guid,
                                 std::move(read_set), std::move(write_set),
                                 is_merge);
}

StatePtr StateDag::CreateStateWithIdLocked(
    StateId id, const std::vector<StatePtr>& parents, GlobalStateId guid,
    KeySet read_set, KeySet write_set, bool is_merge) {
  assert(!parents.empty());
  // Keep the counters ahead of explicitly supplied ids (recovery).
  uint64_t expect = next_id_.load();
  while (expect <= id && !next_id_.compare_exchange_weak(expect, id + 1)) {
  }
  if (guid.site == site_id_) {
    uint64_t seq = next_seq_.load();
    while (seq < guid.seq && !next_seq_.compare_exchange_weak(seq, guid.seq)) {
    }
  }
  auto state = std::make_shared<State>(id, guid);
  state->read_set() = std::move(read_set);
  state->write_set() = std::move(write_set);
  state->set_is_merge(is_merge);

  // Link under every parent first (running the retroactive fork
  // annotation where a parent just became a fork point), and only then
  // compute the new state's fork path from the parents' *updated* paths.
  // The order matters when a merge names both a state and one of its own
  // ancestors as parents: the ancestor's fork entry materializes during
  // linking and must flow into the union.
  std::vector<uint32_t> slots;
  slots.reserve(parents.size());
  for (const StatePtr& parent : parents) {
    const uint32_t slot = parent->AllocateChildSlot();
    slots.push_back(slot);
    if (slot == 2) {
      // The parent just became a fork point: retroactively annotate the
      // first child's subtree with (parent, 1). Runs under the commit
      // lock, before the new state is visible.
      if (!parent->children().empty()) {
        RetroactiveForkAnnotationLocked(parent->children()[0],
                                        ForkPoint{parent->id(), 1});
      }
    }
    parent->children().push_back(state);
    state->parents().push_back(parent);
    leaves_.erase(parent.get());
  }
  ForkPath path;
  for (size_t i = 0; i < parents.size(); i++) {
    path.Union(*parents[i]->fork_path());
    if (slots[i] >= 2) {
      path.Add(ForkPoint{parents[i]->id(), slots[i]});
    }
  }
  state->set_fork_path(std::make_shared<const ForkPath>(std::move(path)));

  by_id_[state->id()] = state;
  by_guid_[state->guid()] = state;
  leaves_.insert(state.get());
  return state;
}

void StateDag::RetroactiveForkAnnotationLocked(const StatePtr& first_child,
                                               ForkPoint entry) {
  // DFS over the first child's subtree, adding `entry` to every fork
  // path. Subtrees below a fresh fork are typically tiny: conflicts are
  // detected within a handful of commits.
  std::deque<StatePtr> work{first_child};
  std::unordered_set<State*> seen;
  while (!work.empty()) {
    StatePtr s = work.back();
    work.pop_back();
    if (!seen.insert(s.get()).second) continue;
    ForkPath updated = *s->fork_path();
    updated.Add(entry);
    s->set_fork_path(std::make_shared<const ForkPath>(std::move(updated)));
    for (const StatePtr& c : s->children()) work.push_back(c);
  }
}

std::vector<StatePtr> StateDag::Leaves() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<StatePtr> out;
  out.reserve(leaves_.size());
  for (State* leaf : leaves_) {
    auto it = by_id_.find(leaf->id());
    if (it != by_id_.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end(),
            [](const StatePtr& a, const StatePtr& b) {
              return a->id() > b->id();
            });
  return out;
}

StatePtr StateDag::ResolveLocked(StateId id) const {
  StateId cur = id;
  visited_scratch_.clear();
  for (int hops = 0; hops < 1 << 20; hops++) {  // cycle guard
    auto it = by_id_.find(cur);
    if (it != by_id_.end()) {
      // Union-find path compression: repoint every promotion entry on the
      // walked chain directly at the live state, so chains stay O(1) no
      // matter how many GC rounds splice them.
      for (StateId hop : visited_scratch_) promoted_[hop] = cur;
      return it->second;
    }
    auto promoted = promoted_.find(cur);
    if (promoted == promoted_.end()) return nullptr;
    visited_scratch_.push_back(cur);
    cur = promoted->second;
  }
  return nullptr;
}

StatePtr StateDag::Resolve(StateId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  return ResolveLocked(id);
}

StatePtr StateDag::ResolveGuidLocked(const GlobalStateId& guid) const {
  auto it = by_guid_.find(guid);
  return it == by_guid_.end() ? nullptr : it->second;
}

StatePtr StateDag::ResolveGuid(const GlobalStateId& guid) const {
  std::lock_guard<std::mutex> guard(mu_);
  return ResolveGuidLocked(guid);
}

StatePtr StateDag::BfsFromLeaves(
    const std::function<bool(const StatePtr&)>& visit) const {
  TARDIS_TRACE_SCOPE("dag", "bfs_from_leaves");
  // Most-recent-first traversal: a max-heap on state id approximates the
  // "breadth-first search through the State DAG from its leaves up" of
  // §6.1.1 while guaranteeing we offer more recent states before their
  // ancestors.
  auto cmp = [](const StatePtr& a, const StatePtr& b) {
    return a->id() < b->id();
  };
  std::priority_queue<StatePtr, std::vector<StatePtr>, decltype(cmp)> heap(
      cmp);
  std::unordered_set<State*> seen;

  for (const StatePtr& leaf : Leaves()) {
    if (seen.insert(leaf.get()).second) heap.push(leaf);
  }
  while (!heap.empty()) {
    StatePtr s = heap.top();
    heap.pop();
    if (visit(s)) return s;
    std::lock_guard<std::mutex> guard(mu_);
    for (const StatePtr& p : s->parents()) {
      if (p->deleted) continue;
      if (seen.insert(p.get()).second) heap.push(p);
    }
  }
  return nullptr;
}

StatePtr StateDag::FindForkPoint(const std::vector<StatePtr>& states) const {
  if (states.empty()) return nullptr;
  if (states.size() == 1) return states[0];
  std::lock_guard<std::mutex> guard(mu_);
  return FindForkPointLocked(states);
}

StatePtr StateDag::FindForkPointLocked(
    const std::vector<StatePtr>& states) const {
  if (states.empty()) return nullptr;
  if (states.size() == 1) return states[0];

  // Walk ancestors of each tip, collecting reachable sets; the deepest
  // common ancestor is the common state with the largest id. The walk is
  // bounded by the (compressed) DAG size.
  std::unordered_map<State*, size_t> reach_count;
  std::unordered_map<State*, StatePtr> ptr_of;
  for (const StatePtr& tip : states) {
    std::unordered_set<State*> seen;
    std::deque<StatePtr> work{tip};
    while (!work.empty()) {
      StatePtr s = work.back();
      work.pop_back();
      if (!seen.insert(s.get()).second) continue;
      reach_count[s.get()]++;
      ptr_of[s.get()] = s;
      for (const StatePtr& p : s->parents()) work.push_back(p);
    }
  }
  StatePtr best;
  for (const auto& [state, count] : reach_count) {
    if (count == states.size()) {
      if (!best || state->id() > best->id()) best = ptr_of[state];
    }
  }
  return best;
}

std::vector<StatePtr> StateDag::FindForkPoints(
    const std::vector<StatePtr>& states) const {
  TARDIS_TRACE_SCOPE("dag", "find_fork_points");
  std::vector<StatePtr> out;
  if (states.empty()) return out;
  if (states.size() == 1) return {states[0]};
  std::unordered_set<State*> seen;
  for (size_t i = 0; i < states.size(); i++) {
    for (size_t j = i + 1; j < states.size(); j++) {
      StatePtr fork = FindForkPoint({states[i], states[j]});
      if (fork != nullptr && seen.insert(fork.get()).second) {
        out.push_back(std::move(fork));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StatePtr& a, const StatePtr& b) {
              return a->id() > b->id();
            });
  // The overall (shallowest) fork point leads, matching the paper's
  // examples that take `.first` as *the* fork point of the merge: it is
  // the unique point from which every branch is reachable.
  StatePtr overall = FindForkPoint(states);
  if (overall != nullptr) {
    auto it = std::find(out.begin(), out.end(), overall);
    if (it != out.end()) out.erase(it);
    out.insert(out.begin(), std::move(overall));
  }
  return out;
}

std::string StateDag::DebugString() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  std::vector<StatePtr> states;
  states.reserve(by_id_.size());
  for (const auto& [id, s] : by_id_) states.push_back(s);
  std::sort(states.begin(), states.end(),
            [](const StatePtr& a, const StatePtr& b) {
              return a->id() < b->id();
            });
  for (const StatePtr& s : states) {
    out += "state " + std::to_string(s->id()) + " guid=" +
           s->guid().ToString();
    out += " parents=[";
    for (size_t i = 0; i < s->parents().size(); i++) {
      if (i) out += ",";
      out += std::to_string(s->parents()[i]->id());
    }
    out += "] path=" + s->fork_path()->ToString();
    if (s->is_merge()) out += " MERGE";
    if (s->children().empty()) out += " LEAF";
    if (s->marked.load()) out += " marked";
    if (!s->write_set().empty()) {
      out += " writes={";
      for (size_t i = 0; i < s->write_set().keys().size(); i++) {
        if (i) out += ",";
        out += s->write_set().keys()[i];
      }
      out += "}";
    }
    out += "\n";
  }
  out += "promotion table: " + std::to_string(promoted_.size()) +
         " entries\n";
  return out;
}

std::string StateDag::ToDot() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out = "digraph tardis {\n  rankdir=TB;\n";
  for (const auto& [id, s] : by_id_) {
    out += "  s" + std::to_string(id) + " [label=\"" + std::to_string(id);
    if (s->is_merge()) out += "\\nmerge";
    out += "\"";
    if (s->children().empty()) out += ", style=bold";
    out += "];\n";
    for (const StatePtr& c : s->children()) {
      out += "  s" + std::to_string(id) + " -> s" +
             std::to_string(c->id()) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

KeySet StateDag::FindConflictWrites(const StatePtr& fork,
                                    const std::vector<StatePtr>& tips) const {
  TARDIS_TRACE_SCOPE("dag", "find_conflict_writes");
  // Per tip, union the write sets of states on the path(s) from the tip
  // up to (excluding) the fork state; a key appearing under >= 2 tips is
  // in conflict.
  std::lock_guard<std::mutex> guard(mu_);
  std::map<std::string, int> written_by_branches;
  for (const StatePtr& tip : tips) {
    KeySet branch_writes;
    std::unordered_set<State*> seen;
    std::deque<StatePtr> work{tip};
    while (!work.empty()) {
      StatePtr s = work.back();
      work.pop_back();
      if (s->id() <= fork->id()) continue;  // at or above the fork
      if (!seen.insert(s.get()).second) continue;
      branch_writes.Union(s->write_set());
      branch_writes.Union(s->inherited_writes());
      for (const StatePtr& p : s->parents()) work.push_back(p);
    }
    for (const std::string& k : branch_writes.keys()) {
      written_by_branches[k]++;
    }
  }
  KeySet conflicts;
  for (const auto& [key, count] : written_by_branches) {
    if (count >= 2) conflicts.Add(key);
  }
  return conflicts;
}

void StateDag::DeleteStateLocked(const StatePtr& victim,
                                 const StatePtr& heir) {
  assert(victim && heir);
  // Unlink the victim and splice the heir in its place so the compressed
  // DAG stays connected (Fig. 8: the child takes over the identity of its
  // parent).
  for (const StatePtr& c : victim->children()) {
    auto& up = c->parents();
    up.erase(std::remove(up.begin(), up.end(), victim), up.end());
    if (c != heir) {
      up.push_back(heir);
      heir->children().push_back(c);
    }
  }
  for (const StatePtr& p : victim->parents()) {
    auto& siblings = p->children();
    siblings.erase(std::remove(siblings.begin(), siblings.end(), victim),
                   siblings.end());
    if (std::find(siblings.begin(), siblings.end(), heir) ==
        siblings.end()) {
      siblings.push_back(heir);
      heir->parents().push_back(p);
    }
  }
  victim->children().clear();
  victim->parents().clear();
  victim->deleted = true;

  // Record the promotion target: the heir takes over the victim's
  // identity (Fig. 8's Promote table). Write-set inheritance is the
  // caller's job (the GC batches it per surviving heir — chain-at-a-time
  // unions here would be quadratic in the chain length).
  promoted_[victim->id()] = heir->id();

  by_id_.erase(victim->id());
  by_guid_.erase(victim->guid());
  leaves_.erase(victim.get());
}

std::vector<StatePtr> StateDag::AllStatesLocked() const {
  std::vector<StatePtr> out;
  out.reserve(by_id_.size());
  for (const auto& [id, state] : by_id_) out.push_back(state);
  std::sort(out.begin(), out.end(),
            [](const StatePtr& a, const StatePtr& b) {
              return a->id() < b->id();
            });
  return out;
}

size_t StateDag::state_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return by_id_.size();
}

size_t StateDag::leaf_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return leaves_.size();
}

size_t StateDag::promotion_table_size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return promoted_.size();
}

}  // namespace tardis
