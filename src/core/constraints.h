// Begin and end constraints (Table 1).
//
// A *begin constraint* is a predicate over candidate read states; the
// transaction reads from the most recent state that satisfies it (§6.1.1).
// An *end constraint* governs commit-state selection (§6.1.2) and is split
// into two predicates that together implement the "ripple down" of
// Figure 6:
//
//   StepOk(txn, X)  — may the committing transaction ripple *through*
//                     concurrently committed state X? This is where the
//                     isolation levels live: Serializability rejects X if
//                     X's writes intersect the transaction's reads;
//                     Snapshot Isolation if they intersect its writes.
//   FinalOk(txn, S) — may the transaction commit as a child of S? This is
//                     where the structural constraints live: NoBranching
//                     requires S to be childless, K-Branching bounds S's
//                     fan-out, StateID pins S exactly.
//
// Constraints compose: And(...) requires all parts (the paper's "union" of
// constraints, e.g. Serializability ∧ NoBranching mimics sequential
// storage), Or(...) accepts any part.
//
// All constraint objects are immutable and shareable across transactions
// and threads.

#ifndef TARDIS_CORE_CONSTRAINTS_H_
#define TARDIS_CORE_CONSTRAINTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/state.h"
#include "core/txn_context.h"

namespace tardis {

class BeginConstraint {
 public:
  virtual ~BeginConstraint() = default;
  /// True iff `s` is an acceptable read state for a transaction in
  /// context `ctx`. Must be callable without the commit lock.
  virtual bool Satisfies(const TxnContext& ctx, const State& s) const = 0;

  /// True if the client's last committed state, while still a leaf, is a
  /// most-recent satisfying state — lets Begin skip the BFS in the common
  /// case of a client extending its own branch (Ancestor semantics).
  virtual bool PrefersSessionTip() const { return false; }

  virtual std::string name() const = 0;
};

class EndConstraint {
 public:
  virtual ~EndConstraint() = default;
  /// May the ripple pass through concurrently committed state `next`?
  /// Called with the commit lock held.
  virtual bool StepOk(const TxnContext& ctx, const State& next) const = 0;
  /// May the transaction commit as a child of `commit_parent`?
  /// Called with the commit lock held.
  virtual bool FinalOk(const TxnContext& ctx,
                       const State& commit_parent) const = 0;
  virtual std::string name() const = 0;
};

using BeginConstraintPtr = std::shared_ptr<const BeginConstraint>;
using EndConstraintPtr = std::shared_ptr<const EndConstraint>;

// ---- begin constraints -----------------------------------------------------

/// "Always satisfies": the most recent state in the DAG (any leaf).
BeginConstraintPtr AnyBegin();
/// "State where client last committed" — Git-like: see only your own
/// operations.
BeginConstraintPtr ParentBegin();
/// Descendant-or-self of the client's last committed state — read-my-
/// writes plus any non-conflicting operations (§5.1's default).
BeginConstraintPtr AncestorBegin();
/// Exactly the state with this local id.
BeginConstraintPtr StateIdBegin(StateId id);
/// All sub-constraints must hold.
BeginConstraintPtr AndBegin(std::vector<BeginConstraintPtr> parts);
/// At least one sub-constraint must hold.
BeginConstraintPtr OrBegin(std::vector<BeginConstraintPtr> parts);

// ---- end constraints -------------------------------------------------------

/// "Always satisfies."
EndConstraintPtr AnyEnd();
/// Serializability: no concurrently committed state between the read state
/// and the commit state may have written a key this transaction read.
EndConstraintPtr SerializabilityEnd();
/// Snapshot isolation: first-committer-wins on the write sets.
EndConstraintPtr SnapshotIsolationEnd();
/// Read committed: every state in the DAG is committed, so always true.
EndConstraintPtr ReadCommittedEnd();
/// The commit parent must have no children: never create a local branch
/// (conflicts abort instead — sequential-storage behavior).
EndConstraintPtr NoBranchingEnd();
/// The commit parent must have fewer than k-1 children: bounds the local
/// branching degree (Table 1).
EndConstraintPtr KBranchingEnd(uint32_t k);
/// The commit parent must be exactly `target` (used by the replicator to
/// apply remote transactions at their original parent).
EndConstraintPtr StateIdEnd(StateId target);
EndConstraintPtr AndEnd(std::vector<EndConstraintPtr> parts);
EndConstraintPtr OrEnd(std::vector<EndConstraintPtr> parts);

}  // namespace tardis

#endif  // TARDIS_CORE_CONSTRAINTS_H_
