#include "core/transaction.h"

#include "core/tardis_store.h"

namespace tardis {

Transaction::Transaction(TardisStore* store, ClientSession* session,
                         Mode mode)
    : store_(store), session_(session), mode_(mode) {}

Transaction::~Transaction() {
  if (active_) Abort();
}

void Transaction::Finish() {
  for (const StatePtr& s : ctx_.read_states) s->UnpinAsReadState();
  active_ = false;
}

Status Transaction::Get(const Slice& key, std::string* value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  auto cached = write_cache_.find(key.ToString());
  if (cached != write_cache_.end()) {
    *value = *cached->second;
    return Status::OK();
  }
  ctx_.reads.Add(key.ToString());
  return store_->TxnGet(this, key, value);
}

Status Transaction::Put(const Slice& key, const Slice& value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  if (key.empty()) return Status::InvalidArgument("empty key");
  ctx_.writes.Add(key.ToString());
  write_cache_[key.ToString()] =
      std::make_shared<const std::string>(value.ToString());
  return Status::OK();
}

Status Transaction::GetForId(const Slice& key, StateId sid,
                             std::string* value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  return store_->TxnGetForId(this, key, sid, value);
}

std::vector<StateId> Transaction::parents() const {
  std::vector<StateId> out;
  out.reserve(ctx_.read_states.size());
  for (const StatePtr& s : ctx_.read_states) out.push_back(s->id());
  return out;
}

StatusOr<std::vector<StateId>> Transaction::FindForkPoints(
    const std::vector<StateId>& states) const {
  if (!active_) return Status::InvalidArgument("transaction finished");
  std::vector<StatePtr> resolved;
  for (StateId sid : states) {
    StatePtr s = store_->dag()->Resolve(sid);
    if (s == nullptr) {
      return Status::Unavailable("state " + std::to_string(sid) +
                                 " unknown or garbage-collected");
    }
    resolved.push_back(std::move(s));
  }
  std::vector<StatePtr> forks = store_->dag()->FindForkPoints(resolved);
  if (forks.empty()) return Status::NotFound("no common ancestor");
  std::vector<StateId> out;
  out.reserve(forks.size());
  for (const StatePtr& f : forks) out.push_back(f->id());
  return out;
}

StatusOr<std::vector<std::string>> Transaction::FindConflictWrites(
    const std::vector<StateId>& states) const {
  if (!active_) return Status::InvalidArgument("transaction finished");
  std::vector<StatePtr> resolved;
  for (StateId sid : states) {
    StatePtr s = store_->dag()->Resolve(sid);
    if (s == nullptr) {
      return Status::Unavailable("state " + std::to_string(sid) +
                                 " unknown or garbage-collected");
    }
    resolved.push_back(std::move(s));
  }
  StatePtr fork = store_->dag()->FindForkPoint(resolved);
  if (fork == nullptr) return Status::NotFound("no common ancestor");
  // Fork-native backends answer this with one O(diff) trie diff per
  // branch; otherwise walk the DAG write sets.
  std::vector<std::string> fast;
  if (store_->TrieConflictWrites(fork, resolved, &fast)) return fast;
  KeySet conflicts = store_->dag()->FindConflictWrites(fork, resolved);
  return conflicts.keys();
}

Status Transaction::Commit(EndConstraintPtr end_constraint) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  return store_->CommitTxn(this, end_constraint);
}

void Transaction::Abort() {
  if (!active_) return;
  store_->AbortTxn(this);
}

}  // namespace tardis
