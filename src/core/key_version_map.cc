#include "core/key_version_map.h"

namespace tardis {

KeyVersionMap::VersionList* KeyVersionMap::GetList(const Slice& key) const {
  std::shared_lock<std::shared_mutex> guard(map_mu_);
  auto it = map_.find(key.ToString());
  return it == map_.end() ? nullptr : it->second.get();
}

KeyVersionMap::VersionList* KeyVersionMap::GetOrCreateList(const Slice& key) {
  if (VersionList* list = GetList(key)) return list;
  std::unique_lock<std::shared_mutex> guard(map_mu_);
  auto& slot = map_[key.ToString()];
  if (!slot) slot = std::make_unique<VersionList>(DescendingBySid());
  return slot.get();
}

bool KeyVersionMap::AddVersion(const Slice& key, const StatePtr& state,
                               std::shared_ptr<const std::string> value) {
  std::shared_lock<std::shared_mutex> gate(gate_);
  VersionList* list = GetOrCreateList(key);
  VersionEntry entry;
  entry.sid = state->id();
  entry.state = state;
  entry.value = std::move(value);
  return list->Insert(entry);
}

StatusOr<VersionEntry> KeyVersionMap::GetVisible(
    const Slice& key, const State& read_state) const {
  std::shared_lock<std::shared_mutex> gate(gate_);
  VersionList* list = GetList(key);
  if (list == nullptr) return Status::NotFound();
  VersionList::Iterator it(list);
  // Skip versions newer than the read state outright: they can never pass
  // the id check of Fig. 7.
  VersionEntry probe;
  probe.sid = read_state.id();
  it.Seek(probe);
  for (; it.Valid(); it.Next()) {
    const VersionEntry& entry = it.key();
    if (StateDag::DescendantCheck(*entry.state, read_state)) {
      return entry;
    }
  }
  return Status::NotFound();
}

std::vector<VersionEntry> KeyVersionMap::Versions(const Slice& key) const {
  std::shared_lock<std::shared_mutex> gate(gate_);
  std::vector<VersionEntry> out;
  VersionList* list = GetList(key);
  if (list == nullptr) return out;
  VersionList::Iterator it(list);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    out.push_back(it.key());
  }
  return out;
}

bool KeyVersionMap::RemoveVersion(const Slice& key, StateId sid) {
  std::shared_lock<std::shared_mutex> gate(gate_);
  VersionList* list = GetList(key);
  if (list == nullptr) return false;
  VersionEntry probe;
  probe.sid = sid;
  return list->Remove(probe);
}

void KeyVersionMap::ForEachKey(
    const std::function<void(const std::string&)>& fn) const {
  std::vector<std::string> keys;
  {
    std::shared_lock<std::shared_mutex> guard(map_mu_);
    keys.reserve(map_.size());
    for (const auto& [k, v] : map_) keys.push_back(k);
  }
  for (const std::string& k : keys) fn(k);
}

void KeyVersionMap::DrainRetired() {
  // Exclusive gate: no reader or writer holds a pointer into any list.
  std::unique_lock<std::shared_mutex> gate(gate_);
  std::shared_lock<std::shared_mutex> guard(map_mu_);
  for (auto& [k, list] : map_) list->DrainRetired();
}

size_t KeyVersionMap::key_count() const {
  std::shared_lock<std::shared_mutex> guard(map_mu_);
  return map_.size();
}

size_t KeyVersionMap::version_count() const {
  std::shared_lock<std::shared_mutex> guard(map_mu_);
  size_t total = 0;
  for (const auto& [k, list] : map_) total += list->size();
  return total;
}

}  // namespace tardis
