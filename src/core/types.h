// Core value types of the TARDiS consistency layer: state identifiers,
// fork points and fork paths (§6.1.3).
//
// A *fork point* is a tuple (i, b): "the current state is a descendant of
// the b-th child of state i". A branch is summarized by its set of fork
// points — its *fork path*. Record-version visibility reduces to the
// subset test of Figure 7, instead of the per-object dependency tracking
// that bottlenecks causally consistent systems.

#ifndef TARDIS_CORE_TYPES_H_
#define TARDIS_CORE_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tardis {

/// Site-local, monotonically increasing state identifier. Along any branch
/// a child's id is strictly greater than its parents' (ids are drawn after
/// the parent exists), which descendantCheck (Fig. 7) relies on.
using StateId = uint64_t;
constexpr StateId kInvalidStateId = ~0ull;

/// Replication-wide state identity: (origin site, per-site sequence).
/// The same logical state carries the same GlobalStateId at every replica
/// ("StateID replication", §7.2.1) while local ids stay site-monotone.
struct GlobalStateId {
  uint32_t site = 0;
  uint64_t seq = 0;

  bool operator==(const GlobalStateId& o) const {
    return site == o.site && seq == o.seq;
  }
  bool operator<(const GlobalStateId& o) const {
    return site != o.site ? site < o.site : seq < o.seq;
  }
  std::string ToString() const {
    return std::to_string(site) + ":" + std::to_string(seq);
  }
};

struct GlobalStateIdHash {
  size_t operator()(const GlobalStateId& g) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(g.site) << 48) ^
                                 g.seq);
  }
};

/// (i, b): descendant of the b-th child (1-based, matching the paper's
/// Figure 5) of state i.
struct ForkPoint {
  StateId state = kInvalidStateId;
  uint32_t child = 0;

  bool operator==(const ForkPoint& o) const {
    return state == o.state && child == o.child;
  }
  bool operator<(const ForkPoint& o) const {
    return state != o.state ? state < o.state : child < o.child;
  }
};

/// A branch summary: sorted set of fork points. Small by design —
/// "conflicts are a small percentage of the total number of operations".
class ForkPath {
 public:
  ForkPath() = default;

  /// Inserts a fork point, keeping the set sorted and unique.
  void Add(const ForkPoint& fp) {
    auto it = std::lower_bound(points_.begin(), points_.end(), fp);
    if (it != points_.end() && *it == fp) return;
    points_.insert(it, fp);
  }

  /// Set union (used for merge states, whose path is the union of their
  /// parents' paths).
  void Union(const ForkPath& other) {
    std::vector<ForkPoint> merged;
    merged.reserve(points_.size() + other.points_.size());
    std::set_union(points_.begin(), points_.end(), other.points_.begin(),
                   other.points_.end(), std::back_inserter(merged));
    points_ = std::move(merged);
  }

  /// True iff every fork point of *this appears in `other` — the
  /// "x.path ⊆ y.path" test of Figure 7. Linear in the path lengths.
  bool SubsetOf(const ForkPath& other) const {
    return std::includes(other.points_.begin(), other.points_.end(),
                         points_.begin(), points_.end());
  }

  bool operator==(const ForkPath& o) const { return points_ == o.points_; }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<ForkPoint>& points() const { return points_; }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < points_.size(); i++) {
      if (i) out += ",";
      out += "(" + std::to_string(points_[i].state) + "," +
             std::to_string(points_[i].child) + ")";
    }
    out += "}";
    return out;
  }

 private:
  std::vector<ForkPoint> points_;
};

/// Sorted, de-duplicated key set; read/write sets of transactions and the
/// write sets stored with DAG states (needed by the Serializability and
/// Snapshot Isolation end constraints and by findConflictWrites).
class KeySet {
 public:
  void Add(const std::string& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return;
    keys_.insert(it, key);
  }

  bool Contains(const std::string& key) const {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }

  /// True iff the two sorted sets share any key.
  bool Intersects(const KeySet& other) const {
    auto a = keys_.begin();
    auto b = other.keys_.begin();
    while (a != keys_.end() && b != other.keys_.end()) {
      const int c = a->compare(*b);
      if (c == 0) return true;
      if (c < 0) ++a;
      else ++b;
    }
    return false;
  }

  void Union(const KeySet& other) {
    std::vector<std::string> merged;
    merged.reserve(keys_.size() + other.keys_.size());
    std::set_union(keys_.begin(), keys_.end(), other.keys_.begin(),
                   other.keys_.end(), std::back_inserter(merged));
    keys_ = std::move(merged);
  }

  void Clear() { keys_.clear(); }
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  const std::vector<std::string>& keys() const { return keys_; }

 private:
  std::vector<std::string> keys_;
};

}  // namespace tardis

#endif  // TARDIS_CORE_TYPES_H_
