// GarbageCollector: TARDiS' three-pronged garbage collection (§6.3).
//
//  1. Ceilings — clients promise never to use states preceding a ceiling
//     as read states.
//  2. DAG (path) compression — the three-pass algorithm of Figure 8:
//     a ceiling-marking bottom-up pass, a safe-to-gc top-down pass, and a
//     garbage-collecting pass that promotes non-fork-point states to
//     their most recent surviving child.
//  3. Record promotion/pruning — record versions of deleted states are
//     re-tagged with their promoted state's id; of a chain sharing an id
//     only the most recent survives.
//
// Runs either on demand (RunOnce) or on a background thread.

#ifndef TARDIS_CORE_GC_H_
#define TARDIS_CORE_GC_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <thread>
#include <vector>

#include "core/key_version_map.h"
#include "core/state_dag.h"
#include "obs/metrics.h"
#include "storage/cowtrie/branch_store.h"
#include "storage/record_store.h"
#include "util/status.h"

namespace tardis {

/// Per-run deltas returned by RunOnce(); TotalStats() materializes the
/// lifetime totals from the metrics registry counters.
struct GcStats {
  uint64_t runs = 0;
  uint64_t states_marked = 0;
  uint64_t states_deleted = 0;
  uint64_t versions_promoted = 0;
  uint64_t versions_pruned = 0;
};

class GarbageCollector {
 public:
  /// `record_store` may be null (pure in-memory configuration); then only
  /// the in-memory version entries are pruned. `registry` is where the GC
  /// registers its counters (null: a private registry is created).
  GarbageCollector(StateDag* dag, KeyVersionMap* kvmap,
                   RecordStore* record_store,
                   obs::MetricsRegistry* registry = nullptr);
  ~GarbageCollector();

  /// When the store runs a fork-native backend, compressed-away states
  /// also release their storage branch here (shared trie nodes survive as
  /// long as any surviving branch references them).
  void SetBranchStore(BranchStore* branch_store) {
    branch_store_ = branch_store;
  }

  /// Registers a ceiling: states that are proper ancestors of `ceiling`
  /// become eligible for compression on the next run.
  void PlaceCeiling(const StatePtr& ceiling);

  /// One full compression + pruning cycle. Safe to run concurrently with
  /// transactions; DAG passes hold the commit lock.
  GcStats RunOnce();

  void StartBackground(uint64_t interval_ms);
  void StopBackground();

  GcStats TotalStats() const;

 private:
  void DagCompressionPass(GcStats* stats);
  void RecordPromotionPass(GcStats* stats);

  StateDag* const dag_;
  KeyVersionMap* const kvmap_;
  RecordStore* const record_store_;
  BranchStore* branch_store_ = nullptr;

  std::mutex run_mu_;  ///< serializes whole collection cycles
  std::mutex ceilings_mu_;
  std::vector<StatePtr> pending_ceilings_;

  /// Keys written by states deleted since the last promotion pass; only
  /// these need record promotion. Touched by the GC thread only.
  std::unordered_set<std::string> dirty_keys_;

  /// Lifetime totals live in registry counters, not a mutex-guarded
  /// struct. own_registry_ backs the counters when no shared registry was
  /// supplied.
  std::shared_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* runs_total_ = nullptr;
  obs::Counter* states_marked_total_ = nullptr;
  obs::Counter* states_deleted_total_ = nullptr;
  obs::Counter* versions_promoted_total_ = nullptr;
  obs::Counter* versions_pruned_total_ = nullptr;
  obs::HistogramMetric* pass_duration_us_ = nullptr;

  std::thread bg_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  bool bg_running_ = false;
};

}  // namespace tardis

#endif  // TARDIS_CORE_GC_H_
