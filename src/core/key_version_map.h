// KeyVersionMap: the in-memory mapping from user keys to the
// topologically ordered list of record versions (§6.1.3–6.1.4).
//
// Each key owns a concurrent skip list of version entries sorted by
// *descending* state id. Because state ids increase monotonically along
// every branch, descending id order is a topological order of the true
// version DAG, and the first entry that passes the fork-path descendant
// check is the most recent version visible on the reader's branch.
//
// Values are kept inline (shared_ptr) so reads never touch the record
// B-Tree in the steady state; after recovery, entries may carry a null
// value and the store lazily reloads it from the record store.

#ifndef TARDIS_CORE_KEY_VERSION_MAP_H_
#define TARDIS_CORE_KEY_VERSION_MAP_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/state.h"
#include "core/state_dag.h"
#include "core/types.h"
#include "storage/skiplist.h"
#include "util/slice.h"
#include "util/status.h"

namespace tardis {

struct VersionEntry {
  StateId sid = kInvalidStateId;
  StatePtr state;
  std::shared_ptr<const std::string> value;
};

class KeyVersionMap {
 public:
  KeyVersionMap() = default;
  KeyVersionMap(const KeyVersionMap&) = delete;
  KeyVersionMap& operator=(const KeyVersionMap&) = delete;

  /// Registers a new version of `key` created by `state`. Insertion keeps
  /// the per-key list topologically sorted regardless of caller timing.
  /// Returns false if a version for this state already exists.
  bool AddVersion(const Slice& key, const StatePtr& state,
                  std::shared_ptr<const std::string> value);

  /// Most recent version of `key` visible from `read_state` (Fig. 7 check
  /// per entry). Status::NotFound if the key has no visible version.
  StatusOr<VersionEntry> GetVisible(const Slice& key,
                                    const State& read_state) const;

  /// All live versions of `key`, most recent first (GC and diagnostics).
  std::vector<VersionEntry> Versions(const Slice& key) const;

  /// Removes the version of `key` tagged with `sid`. Returns false if no
  /// such version exists.
  bool RemoveVersion(const Slice& key, StateId sid);

  /// Iterates over every key (snapshot of the key set; version lists are
  /// read live). Used by the record-pruning GC pass.
  void ForEachKey(const std::function<void(const std::string&)>& fn) const;

  /// Reclaims retired skip-list nodes for all keys. Internally takes the
  /// reclamation gate exclusively, so it is safe to call at any time; all
  /// other methods hold the gate shared while touching version lists.
  void DrainRetired();

  size_t key_count() const;
  /// Total live versions across all keys (Fig. 13's "records" series).
  size_t version_count() const;

 private:
  struct DescendingBySid {
    int operator()(const VersionEntry& a, const VersionEntry& b) const {
      if (a.sid > b.sid) return -1;
      if (a.sid < b.sid) return +1;
      return 0;
    }
  };
  using VersionList = SkipList<VersionEntry, DescendingBySid>;

  VersionList* GetList(const Slice& key) const;
  VersionList* GetOrCreateList(const Slice& key);

  mutable std::shared_mutex map_mu_;  // guards the map structure only
  /// Reclamation gate: held shared by every method that touches a version
  /// list, exclusively by DrainRetired — retired nodes are freed only when
  /// no other thread can hold a pointer into a list.
  mutable std::shared_mutex gate_;
  std::unordered_map<std::string, std::unique_ptr<VersionList>> map_;
};

}  // namespace tardis

#endif  // TARDIS_CORE_KEY_VERSION_MAP_H_
