// Client sessions & exactly-once retries (DESIGN.md §13).
//
// A client that loses its connection after sending `put`/`mput` cannot
// tell whether the write executed; a blind resend double-applies it —
// and under branch-on-conflict a duplicated write silently becomes an
// extra sibling branch the merge policies then have to reconcile. The
// session layer makes mutating commands idempotent:
//
//  * Clients attach a `*S` line-protocol header (shaped like the `*T`
//    trace header) carrying (session_id, seq): the session identity, a
//    monotonically increasing per-session write sequence, a retry
//    attempt counter, flags, and the session's read/write floors over
//    branch tips (origin site -> minimum applied sequence).
//  * Each site keeps a bounded SessionDedup table mapping
//    (session_id, seq) -> the guid of the commit that applied it, so a
//    retried write returns the original reply instead of re-executing.
//    The mapping rides the commit log (CommitLogEntry session fields),
//    so crash-restart replay rebuilds it and retries stay deduped.
//  * The router derives cross-partition 2PC transaction ids from the
//    client request id (DeriveSessionTxnId), so a retried `mput`
//    resolves the in-doubt transaction instead of starting a second one.
//
// Unlike the trace header, a corrupt or oversized `*S` token is
// REJECTED (retryable "ERR HEADER", counter bump), never silently
// stripped: silent stripping would turn a dedupable write into a blind
// one.

#ifndef TARDIS_CORE_SESSION_H_
#define TARDIS_CORE_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"
#include "obs/metrics.h"

namespace tardis {

// SessionHeader flag bits.
inline constexpr uint32_t kSessionFlagWrite = 1u << 0;  ///< dedup this seq
/// The request deliberately carries a reduced floor set (client-side
/// --stale-reads-ms): the serving site may be behind by the client's
/// staleness bound.
inline constexpr uint32_t kSessionFlagStaleOk = 1u << 1;

/// Hard bound on an accepted `*S` token; anything longer is rejected as
/// oversized (a header must never smuggle unbounded payload past the
/// command parser).
inline constexpr size_t kMaxSessionHeaderBytes = 256;
/// Hard bound on the floor list length (a cluster has few origin sites).
inline constexpr size_t kMaxSessionFloors = 16;

/// The parsed `*S` header:
///   *S<session>/<seq>/<attempt>/<flags>[/<site>:<seq>[,<site>:<seq>...]]
/// All fields lowercase hex (like the trace header). session_id == 0
/// means "no session".
struct SessionHeader {
  uint64_t session_id = 0;
  uint64_t seq = 0;      ///< per-session write sequence; 0 on reads
  uint64_t attempt = 0;  ///< bumped only after a known-aborted 2PC attempt
  uint32_t flags = 0;
  /// Read-your-writes / monotonic floors: origin site -> minimum applied
  /// local sequence the serving site must have caught up to.
  std::vector<std::pair<uint32_t, uint64_t>> floors;

  bool write() const { return (flags & kSessionFlagWrite) != 0; }
  bool stale_ok() const { return (flags & kSessionFlagStaleOk) != 0; }
};

std::string FormatSessionHeader(const SessionHeader& h);

/// Parses one `*S...` token (no surrounding whitespace). False on any
/// malformed or oversized token.
bool ParseSessionHeader(const std::string& token, SessionHeader* h);

enum class SessionHeaderStatus {
  kAbsent,     ///< line carries no *S token
  kOk,         ///< header parsed and stripped
  kMalformed,  ///< *S-shaped token that does not parse: REJECT the request
};

/// Strips a leading `*S` token off `line` (after any trace header has
/// already been stripped). On kMalformed the token is consumed but the
/// request must be rejected with a retryable error, not executed.
SessionHeaderStatus StripSessionHeader(std::string* line, SessionHeader* h);

/// Server floors attached to session-tagged replies, as a leading token:
///   *F<site>:<seq>[,<site>:<seq>...]
/// The client merges these into its session so later requests carry them
/// (monotonic reads across failover).
std::string FormatFloorToken(const std::map<uint32_t, uint64_t>& floors);
bool StripFloorToken(std::string* reply,
                     std::map<uint32_t, uint64_t>* floors);

/// Deterministic 2PC transaction id for a session-tagged request
/// (SplitMix64 over the triple; attempt differentiates re-derivations
/// after a known abort). Never returns 0. Ids from distinct sessions
/// collide with ~2^-64 probability — indistinguishable from the random
/// ids unsessioned transactions use.
uint64_t DeriveSessionTxnId(uint64_t session_id, uint64_t seq,
                            uint64_t attempt);

/// True when the serving site covers every floor in `h`: its own commit
/// sequence has reached floors for `local_site`, and the replication
/// applied-floor map covers the rest. A missing origin counts as floor 0.
bool SessionFloorsCovered(const SessionHeader& h, uint32_t local_site,
                          uint64_t local_applied_seq,
                          const std::map<uint32_t, uint64_t>& applied);

/// SessionDedup: the bounded per-site (session_id, seq) -> commit guid
/// table. Fed from three places — local tagged commits, remote tagged
/// commits arriving through replication, and commit-log replay during
/// recovery — so lookups dedup retries against everything this site has
/// applied, across crash-restarts and across the write's origin site.
///
/// Bounds: at most `max_sessions` sessions (LRU-evicted) of at most
/// `per_session` entries each (lowest sequences evicted first — a client
/// only ever retries its most recent writes). Thread-safe.
class SessionDedup {
 public:
  struct Options {
    size_t max_sessions = 1024;
    size_t per_session = 128;
  };

  SessionDedup() : SessionDedup(Options()) {}
  explicit SessionDedup(Options options);

  /// Registers tardis_session_dedup_* on `registry` (owner-scoped to
  /// `owner`; pass the enclosing store). Call once, before traffic.
  void RegisterMetrics(obs::MetricsRegistry* registry, void* owner);

  /// True (and fills *guid) when (session_id, seq) already applied here.
  bool Lookup(uint64_t session_id, uint64_t seq, GlobalStateId* guid);

  /// Remembers (session_id, seq) -> guid. Recording a sequence that is
  /// already present under a different guid means a duplicate commit
  /// slipped past dedup (e.g. a failover retry that outran replication);
  /// it bumps tardis_session_dedup_duplicates and keeps the first guid.
  void Record(uint64_t session_id, uint64_t seq, const GlobalStateId& guid);

  /// Counter for rejected (corrupt/oversized) session headers; bumped by
  /// the request paths that parse headers.
  void IncrementRejected();

  size_t session_count() const;
  size_t entry_count() const;
  uint64_t duplicates() const;

 private:
  struct Session {
    std::map<uint64_t, GlobalStateId> entries;  ///< seq -> commit guid
    std::list<uint64_t>::iterator lru_pos;
  };

  void TouchLocked(uint64_t session_id, Session* s);

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Session> sessions_;
  std::list<uint64_t> lru_;  ///< most-recently-used session ids, front first
  size_t entry_count_ = 0;
  uint64_t duplicates_ = 0;

  obs::Counter* hits_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* duplicates_counter_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace tardis

#endif  // TARDIS_CORE_SESSION_H_
