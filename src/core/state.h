// State: a vertex of the State DAG (§4). Each update transaction that
// commits creates one state; read-only transactions do not (§6.1.4).
//
// Lifetime: states are held by shared_ptr from (a) the DAG's id map,
// (b) parent/child edges, (c) record version entries, and (d) executing
// transactions' read-state pins. DAG compression unlinks a state from the
// id map and the edges; the object is reclaimed once the last version
// entry referencing it has been promoted (§6.3).

#ifndef TARDIS_CORE_STATE_H_
#define TARDIS_CORE_STATE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/types.h"

namespace tardis {

class State;
using StatePtr = std::shared_ptr<State>;

class State {
 public:
  State(StateId id, GlobalStateId guid) : id_(id), guid_(guid) {}

  StateId id() const { return id_; }
  const GlobalStateId& guid() const { return guid_; }

  /// Immutable-snapshot fork path. Mutations (the retroactive update when
  /// a state gains a second child, see StateDag) swap the pointer; readers
  /// always see a consistent path.
  std::shared_ptr<const ForkPath> fork_path() const {
    return fork_path_.load(std::memory_order_acquire);
  }
  void set_fork_path(std::shared_ptr<const ForkPath> p) {
    fork_path_.store(std::move(p), std::memory_order_release);
  }

  // --- DAG structure. Guarded by the owning StateDag's mutex. -----------
  std::vector<StatePtr>& parents() { return parents_; }
  const std::vector<StatePtr>& parents() const { return parents_; }
  std::vector<StatePtr>& children() { return children_; }
  const std::vector<StatePtr>& children() const { return children_; }

  /// Number of children ever attached (1-based child indices are stable
  /// even after GC unlinks siblings).
  uint32_t child_slots() const { return child_slots_; }
  uint32_t AllocateChildSlot() { return ++child_slots_; }

  // --- transaction metadata ----------------------------------------------
  /// Write set of the transaction that created this state (own writes
  /// only — used by the Serializability/SI end constraints, replication,
  /// and GC dirty-key tracking).
  KeySet& write_set() { return write_set_; }
  const KeySet& write_set() const { return write_set_; }
  /// Keys written by compressed-away ancestors that this state absorbed
  /// during DAG compression (§6.3) — keeps findConflictWrites correct
  /// across garbage-collected chain interiors without polluting the
  /// validation write set.
  KeySet& inherited_writes() { return inherited_writes_; }
  const KeySet& inherited_writes() const { return inherited_writes_; }
  /// Read set (kept for the Serializability end constraint).
  KeySet& read_set() { return read_set_; }
  const KeySet& read_set() const { return read_set_; }

  bool is_merge() const { return is_merge_; }
  void set_is_merge(bool v) { is_merge_ = v; }

  /// Exactly-once session tag of the commit that created this state
  /// (0/0 when untagged). Kept on the state so checkpoints rebuild the
  /// dedup table: a checkpoint snapshots the DAG, not the commit log.
  uint64_t session_id() const { return session_id_; }
  uint64_t session_seq() const { return session_seq_; }
  void set_session_tag(uint64_t id, uint64_t seq) {
    session_id_ = id;
    session_seq_ = seq;
  }

  // --- read-state pinning (GC pass 2 must skip pinned states) ------------
  void PinAsReadState() { read_pins_.fetch_add(1, std::memory_order_relaxed); }
  void UnpinAsReadState() {
    read_pins_.fetch_sub(1, std::memory_order_relaxed);
  }
  int read_pins() const { return read_pins_.load(std::memory_order_relaxed); }

  // --- GC bookkeeping (mutated under the DAG mutex; read lock-free by
  // --- Begin's BFS and by record pruning, hence atomic) ------------------
  std::atomic<bool> marked{false};      ///< above a ceiling (pass 1)
  std::atomic<bool> safe_to_gc{false};  ///< pass 2
  std::atomic<bool> deleted{false};     ///< unlinked from the DAG

 private:
  const StateId id_;
  const GlobalStateId guid_;
  std::atomic<std::shared_ptr<const ForkPath>> fork_path_{
      std::make_shared<const ForkPath>()};
  std::vector<StatePtr> parents_;
  std::vector<StatePtr> children_;
  uint32_t child_slots_ = 0;
  KeySet write_set_;
  KeySet inherited_writes_;
  KeySet read_set_;
  bool is_merge_ = false;
  uint64_t session_id_ = 0;
  uint64_t session_seq_ = 0;
  std::atomic<int> read_pins_{0};
};

}  // namespace tardis

#endif  // TARDIS_CORE_STATE_H_
