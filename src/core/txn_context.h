// TxnContext: the slice of a transaction's state that constraints and the
// commit logic need — read/write key sets, selected read states, and the
// client session's last committed state. Kept separate from Transaction so
// constraints do not depend on the full transaction machinery.

#ifndef TARDIS_CORE_TXN_CONTEXT_H_
#define TARDIS_CORE_TXN_CONTEXT_H_

#include <vector>

#include "core/state.h"
#include "core/types.h"

namespace tardis {

struct TxnContext {
  KeySet reads;
  KeySet writes;
  /// Read states selected at begin (one in single mode, several in merge
  /// mode). Pinned against GC for the transaction's lifetime.
  std::vector<StatePtr> read_states;
  /// The state this client last committed (nullptr before the first
  /// commit; session guarantees treat the DAG root as the origin then).
  StatePtr session_last_commit;
};

}  // namespace tardis

#endif  // TARDIS_CORE_TXN_CONTEXT_H_
