// Transaction: the unit of execution against a TARDiS site (Table 2).
//
// Single-mode transactions read from and write to one branch and look
// exactly like transactions on sequential storage. Merge-mode
// transactions (beginMerge) select several branch tips as read states and
// atomically write back one merged state; the three merge helpers —
// FindForkPoints, FindConflictWrites, GetForId — expose the branch
// structure the application needs to reconcile them (§5.1, §6.2).
//
// A Transaction is owned and driven by a single client thread.

#ifndef TARDIS_CORE_TRANSACTION_H_
#define TARDIS_CORE_TRANSACTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/txn_context.h"
#include "core/types.h"
#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class TardisStore;
class ClientSession;

class Transaction {
 public:
  enum class Mode { kSingle, kMerge };

  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Mode mode() const { return mode_; }
  bool active() const { return active_; }

  /// Reads `key` on this transaction's branch (first read state in merge
  /// mode). Sees the transaction's own earlier writes.
  Status Get(const Slice& key, std::string* value);

  /// Buffers a write; becomes visible at commit.
  Status Put(const Slice& key, const Slice& value);

  /// Table 2 getForID: the value of `key` at state `sid` (any state,
  /// typically a fork point or one of parents()). Follows GC promotions.
  Status GetForId(const Slice& key, StateId sid, std::string* value);

  /// Local ids of the read states ("t.parents" in the paper's examples).
  std::vector<StateId> parents() const;

  /// Table 2 findForkPoints: the structured set of fork points of the
  /// given states — the deduplicated pairwise deepest common ancestors.
  /// The first element is the overall fork point (what the paper's
  /// examples use as `.first`); with two branches it is the only one.
  StatusOr<std::vector<StateId>> FindForkPoints(
      const std::vector<StateId>& states) const;

  /// Table 2 findConflictWrites: keys written on >= 2 of the branches
  /// leading to `states` since their fork point.
  StatusOr<std::vector<std::string>> FindConflictWrites(
      const std::vector<StateId>& states) const;

  /// Commits under `end_constraint` (store default if null). On
  /// Status::Aborted the transaction is finished and must be retried by
  /// the caller with a fresh Begin.
  Status Commit(EndConstraintPtr end_constraint = nullptr);

  /// Abandons the transaction (always succeeds).
  void Abort();

  /// Tags the commit with an exactly-once client session identity
  /// (DESIGN.md §13). The tag rides the commit-log entry and the
  /// replicated CommitRecord, feeding every site's dedup table.
  void SetSessionTag(uint64_t session_id, uint64_t session_seq) {
    session_tag_id_ = session_id;
    session_tag_seq_ = session_seq;
  }
  uint64_t session_tag_id() const { return session_tag_id_; }
  uint64_t session_tag_seq() const { return session_tag_seq_; }

  const TxnContext& context() const { return ctx_; }

 private:
  friend class TardisStore;
  Transaction(TardisStore* store, ClientSession* session, Mode mode);

  void Finish();

  TardisStore* const store_;
  ClientSession* const session_;
  const Mode mode_;
  TxnContext ctx_;
  /// Buffered writes (last value per key wins).
  std::map<std::string, std::shared_ptr<const std::string>> write_cache_;
  uint64_t session_tag_id_ = 0;
  uint64_t session_tag_seq_ = 0;
  bool active_ = true;
};

using TxnPtr = std::unique_ptr<Transaction>;

}  // namespace tardis

#endif  // TARDIS_CORE_TRANSACTION_H_
