// TardisStore: a single TARDiS site (Figure 2) — storage layer, consistency
// layer, garbage collector unit, and the hooks the replicator service
// attaches to.
//
// Typical use:
//
//   TardisOptions options;
//   auto store = TardisStore::Open(options);
//   auto session = (*store)->CreateSession();
//   auto txn = (*store)->Begin(session.get());          // Ancestor begin
//   (*txn)->Put("k", "v");
//   (*txn)->Get("k", &value);
//   (*txn)->Commit(SerializabilityEnd());
//
// Conflicting commits fork the State DAG instead of blocking or aborting
// (branch-on-conflict); merge transactions reconcile the branches:
//
//   auto merge = (*store)->BeginMerge(session.get());
//   auto forks = (*merge)->FindForkPoints((*merge)->parents());
//   ... resolve ...
//   (*merge)->Commit();

#ifndef TARDIS_CORE_TARDIS_STORE_H_
#define TARDIS_CORE_TARDIS_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/commit_log.h"
#include "core/constraints.h"
#include "core/gc.h"
#include "core/key_version_map.h"
#include "core/options.h"
#include "core/session.h"
#include "core/state_dag.h"
#include "core/transaction.h"
#include "obs/metrics.h"
#include "storage/cowtrie/cow_trie.h"
#include "storage/record_store.h"
#include "util/status.h"

namespace tardis {

/// Per-client session state: tracks the last committed state for the
/// Parent/Ancestor begin constraints and read-my-writes. One session per
/// client thread; not thread-safe.
class ClientSession {
 public:
  StatePtr last_commit() const { return last_commit_; }

 private:
  friend class TardisStore;
  friend class Transaction;
  StatePtr last_commit_;
};

/// A committed transaction as shipped to other sites by the replicator.
struct CommitRecord {
  CommitRecord() = default;
  // Noexcept-movable so replication queues and transports relocate
  // records without copying the write set.
  CommitRecord(CommitRecord&&) noexcept = default;
  CommitRecord& operator=(CommitRecord&&) noexcept = default;
  CommitRecord(const CommitRecord&) = default;
  CommitRecord& operator=(const CommitRecord&) = default;

  GlobalStateId guid;
  std::vector<GlobalStateId> parent_guids;
  bool is_merge = false;
  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
      writes;
  /// Exactly-once session tag (DESIGN.md §13); replicated so every site's
  /// dedup table learns about tagged commits from other sites. 0 = none.
  uint64_t session_id = 0;
  uint64_t session_seq = 0;
};

/// Compatibility snapshot of the per-site transaction counters. The
/// authoritative storage is the metrics registry (see
/// TardisStore::metrics()); stats() materializes this view from it.
struct StoreStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t read_only_commits = 0;
  uint64_t remote_applied = 0;
  uint64_t branches_created = 0;  ///< commits that forked the DAG
  uint64_t merges_committed = 0;
};

class TardisStore {
 public:
  static StatusOr<std::unique_ptr<TardisStore>> Open(
      const TardisOptions& options);
  ~TardisStore();

  TardisStore(const TardisStore&) = delete;
  TardisStore& operator=(const TardisStore&) = delete;

  std::unique_ptr<ClientSession> CreateSession();

  /// Starts a single-mode transaction. Default begin constraint:
  /// Ancestor (§5.1).
  StatusOr<TxnPtr> Begin(ClientSession* session,
                         BeginConstraintPtr begin = nullptr);

  /// Starts a merge transaction whose read states are all current branch
  /// tips satisfying `begin` (default: Any). `max_parents` caps how many
  /// branches one merge reconciles (0 = unlimited).
  StatusOr<TxnPtr> BeginMerge(ClientSession* session,
                              BeginConstraintPtr begin = nullptr,
                              size_t max_parents = 0);

  // ---- garbage collection ------------------------------------------------
  /// Places a ceiling at the session's last committed state (§6.3).
  void PlaceCeiling(ClientSession* session);
  GcStats RunGarbageCollection() { return gc_->RunOnce(); }
  void StartGcThread(uint64_t interval_ms) {
    gc_->StartBackground(interval_ms);
  }
  void StopGcThread() { gc_->StopBackground(); }

  // ---- replication hooks (used by replication::Replicator) ----------------
  /// Invoked after every local commit, outside the commit lock.
  void SetCommitCallback(std::function<void(const CommitRecord&)> cb) {
    commit_cb_ = std::move(cb);
  }
  /// Applies a transaction committed at another site as a child of its
  /// original parent states (the StateID constraint of §6.4). Idempotent.
  /// Returns Status::Unavailable if a parent has not been received yet.
  Status ApplyRemote(const CommitRecord& record);

  // ---- durability ---------------------------------------------------------
  /// Flushes record store and commit log to stable storage. Fails while
  /// the store is durability-degraded (see commit_log_degraded()).
  Status Flush();
  /// Non-blocking-style checkpoint (§6.5): persists the DAG snapshot and
  /// truncates the commit log. Also refused while degraded: a checkpoint
  /// taken over missing records would replay as committed state whose
  /// values are gone (checkpoint replay skips the persistence check).
  Status Checkpoint();
  /// True once a commit-log append or record persist has failed: commits
  /// keep succeeding in memory (availability over durability), but the
  /// on-disk log no longer covers every committed state. Cleared only by
  /// reopening the store (crash-restart recovery re-derives truth from
  /// disk).
  bool commit_log_degraded() const {
    return commit_log_degraded_.load(std::memory_order_relaxed);
  }

  // ---- introspection -------------------------------------------------------
  StateDag* dag() { return &dag_; }
  KeyVersionMap* kvmap() { return &kvmap_; }
  GarbageCollector* gc() { return gc_.get(); }
  RecordStore* record_store() { return record_store_.get(); }
  /// The fork-native branch store, or null when the backend is not the
  /// trie (DESIGN.md §12).
  BranchStore* branch_store() { return trie_.get(); }
  /// The record backend this store resolved at Open ("mem", "btree",
  /// "trie").
  const char* backend_name() const {
    return RecordBackendName(resolved_backend_);
  }
  /// True while per-state reads and merge construction route through the
  /// trie's branches instead of the key-version map (trie backend, fully
  /// in-memory store, no fast-path error so far).
  bool trie_fast_path() const {
    return trie_fast_path_.load(std::memory_order_relaxed);
  }
  const TardisOptions& options() const { return options_; }
  /// The registry holding every metric of this site (txn counters, DAG
  /// gauges, GC counters; the replicator and transport register here too
  /// when they share the registry).
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  StoreStats stats() const;
  uint32_t site_id() const { return dag_.site_id(); }
  /// The per-site exactly-once dedup table (DESIGN.md §13). Fed by every
  /// tagged commit path — local, remote, recovery — so request handlers
  /// only ever need Lookup.
  SessionDedup* session_dedup() { return &session_dedup_; }

 private:
  friend class Transaction;

  explicit TardisStore(const TardisOptions& options);

  Status Recover();
  Status RecoverEntry(const CommitLogEntry& entry, bool check_persistence,
                      bool* stop);
  /// Every non-root state as a commit-log entry, id order (used by
  /// Checkpoint and by the post-recovery log rewrite).
  std::vector<CommitLogEntry> SnapshotDag();

  /// Transaction plumbing (called by Transaction).
  Status TxnGet(Transaction* t, const Slice& key, std::string* value);
  Status TxnGetForId(Transaction* t, const Slice& key, StateId sid,
                     std::string* value);
  Status CommitTxn(Transaction* t, const EndConstraintPtr& ec);
  void AbortTxn(Transaction* t);

  void RegisterMetrics();

  Status LoadValue(const Slice& key, const VersionEntry& entry,
                   std::string* value);

  /// Builds the trie branch of a freshly created state: fork from a
  /// single parent, or a fold of 3-way merges for merge states, then the
  /// transaction's writes tagged with the new state id. Caller holds the
  /// commit lock. Non-OK permanently disables the fast path (reads fall
  /// back to the key-version map, which is maintained regardless).
  Status TrieCommitLocked(
      const StatePtr& new_state, const std::vector<StatePtr>& parents,
      const std::map<std::string, std::shared_ptr<const std::string>>&
          writes);
  void DisableTrieFastPath(const char* what, const Status& s);
  /// Trie fast path of Table 2 findConflictWrites: one O(diff) trie diff
  /// per tip against the fork point instead of a DAG walk. Returns false
  /// (fall back to the DAG) when the fast path is off or a branch is
  /// missing.
  bool TrieConflictWrites(const StatePtr& fork,
                          const std::vector<StatePtr>& tips,
                          std::vector<std::string>* out);

  TardisOptions options_;
  RecordBackend resolved_backend_ = RecordBackend::kMem;
  StateDag dag_;
  KeyVersionMap kvmap_;
  std::shared_ptr<CowTrie> trie_;  // null unless backend is kTrie
  std::atomic<bool> trie_fast_path_{false};
  std::unique_ptr<RecordStore> record_store_;
  std::unique_ptr<CommitLog> commit_log_;
  std::unique_ptr<GarbageCollector> gc_;
  SessionDedup session_dedup_;
  std::function<void(const CommitRecord&)> commit_cb_;

  /// Lock-free registry metrics; the commit hot path increments counters
  /// without any mutex (the StoreStats mutex this replaced is gone).
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* commits_total_ = nullptr;
  obs::Counter* aborts_total_ = nullptr;
  obs::Counter* read_only_commits_total_ = nullptr;
  obs::Counter* remote_applied_total_ = nullptr;
  obs::Counter* forks_total_ = nullptr;
  obs::Counter* merges_total_ = nullptr;
  obs::HistogramMetric* commit_latency_us_ = nullptr;
  obs::HistogramMetric* merge_latency_us_ = nullptr;
  obs::HistogramMetric* stage_commit_select_us_ = nullptr;
  obs::HistogramMetric* stage_wal_fsync_us_ = nullptr;

  std::atomic<bool> checkpoint_running_{false};
  std::atomic<bool> commit_log_degraded_{false};

  BeginConstraintPtr default_begin_;
  EndConstraintPtr default_end_;
};

}  // namespace tardis

#endif  // TARDIS_CORE_TARDIS_STORE_H_
