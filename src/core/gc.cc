#include "core/gc.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/record_codec.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace tardis {

GarbageCollector::GarbageCollector(StateDag* dag, KeyVersionMap* kvmap,
                                   RecordStore* record_store,
                                   obs::MetricsRegistry* registry)
    : dag_(dag), kvmap_(kvmap), record_store_(record_store) {
  if (registry == nullptr) {
    own_registry_ = std::make_shared<obs::MetricsRegistry>();
    registry = own_registry_.get();
  }
  const obs::LabelSet site{{"site", std::to_string(dag_->site_id())}};
  runs_total_ = registry->RegisterCounter(
      "tardis_gc_runs_total", "Completed garbage collection cycles", site);
  states_marked_total_ = registry->RegisterCounter(
      "tardis_gc_states_marked_total",
      "DAG states marked below a ceiling (pass 1)", site);
  states_deleted_total_ = registry->RegisterCounter(
      "tardis_gc_states_deleted_total",
      "DAG states compressed away (pass 3)", site);
  versions_promoted_total_ = registry->RegisterCounter(
      "tardis_gc_versions_promoted_total",
      "Record versions retained as chain survivors", site);
  versions_pruned_total_ = registry->RegisterCounter(
      "tardis_gc_versions_pruned_total",
      "Record versions removed from the version map and store", site);
  pass_duration_us_ = registry->RegisterHistogram(
      "tardis_gc_pass_duration_us",
      "Wall time of one full GC cycle, microseconds", site);
}

GarbageCollector::~GarbageCollector() { StopBackground(); }

void GarbageCollector::PlaceCeiling(const StatePtr& ceiling) {
  if (ceiling == nullptr) return;
  std::lock_guard<std::mutex> guard(ceilings_mu_);
  pending_ceilings_.push_back(ceiling);
}

GcStats GarbageCollector::RunOnce() {
  // One collection cycle at a time: a manual RunOnce may race the
  // background thread, and the passes share dirty_keys_ and the
  // safe-to-gc markings.
  std::lock_guard<std::mutex> run_guard(run_mu_);
  TARDIS_TRACE_SCOPE("gc", "run");
  GcStats stats;
  stats.runs = 1;
  static const bool trace = getenv("TARDIS_GC_TRACE") != nullptr;
  const uint64_t t0 = NowMicros();
  DagCompressionPass(&stats);
  const uint64_t t1 = NowMicros();
  RecordPromotionPass(&stats);
  if (trace) {
    fprintf(stderr,
            "[gc] compress=%lluus promote=%lluus deleted=%llu pruned=%llu "
            "kept=%llu\n",
            (unsigned long long)(t1 - t0),
            (unsigned long long)(NowMicros() - t1),
            (unsigned long long)stats.states_deleted,
            (unsigned long long)stats.versions_pruned,
            (unsigned long long)stats.versions_promoted);
  }
  runs_total_->Increment();
  states_marked_total_->Increment(stats.states_marked);
  states_deleted_total_->Increment(stats.states_deleted);
  versions_promoted_total_->Increment(stats.versions_promoted);
  versions_pruned_total_->Increment(stats.versions_pruned);
  pass_duration_us_->Observe(NowMicros() - t0);
  return stats;
}

void GarbageCollector::DagCompressionPass(GcStats* stats) {
  TARDIS_TRACE_SCOPE("gc", "compress");
  std::vector<StatePtr> ceilings;
  {
    std::lock_guard<std::mutex> guard(ceilings_mu_);
    ceilings.swap(pending_ceilings_);
  }

  std::lock_guard<std::mutex> dag_guard(dag_->Lock());

  // Pass 1 (bottom-up): mark every proper ancestor of each ceiling. A
  // marked state's ancestors are already marked (invariant of this pass),
  // so the walk stops at the first marked state — each state is marked
  // exactly once over the store's lifetime, no matter how many ceilings
  // accumulate above it.
  for (const StatePtr& ceiling : ceilings) {
    std::deque<StatePtr> work(ceiling->parents().begin(),
                              ceiling->parents().end());
    while (!work.empty()) {
      StatePtr s = work.back();
      work.pop_back();
      if (s->marked.exchange(true)) continue;  // subtree already done
      stats->states_marked++;
      for (const StatePtr& p : s->parents()) work.push_back(p);
    }
  }

  // Pass 2 (top-down, id order = topological): safe-to-gc iff marked, not
  // pinned as a read state, and all surviving parents are safe-to-gc.
  std::vector<StatePtr> states = dag_->AllStatesLocked();
  for (const StatePtr& s : states) {
    if (!s->marked.load()) continue;
    if (s->read_pins() > 0) {
      s->safe_to_gc = false;
      continue;
    }
    bool parents_safe = true;
    for (const StatePtr& p : s->parents()) {
      if (!p->safe_to_gc.load()) {
        parents_safe = false;
        break;
      }
    }
    s->safe_to_gc = parents_safe;
  }

  // Pass 3: delete safe states that are not fork points, promoting each
  // to its most recent surviving child. Record which keys lost a version
  // owner so the promotion pass only visits those, and batch the
  // write-set inheritance per *final* surviving heir (a chain-at-a-time
  // union would be quadratic in the chain length).
  std::vector<StatePtr> victims;
  for (const StatePtr& s : states) {
    if (s->deleted.load() || !s->safe_to_gc.load()) continue;
    if (s->parents().empty()) continue;  // keep the root: every surviving
                                         // state stays attached to it
    if (s->children().size() != 1) continue;  // fork point or dangling leaf
    StatePtr heir = s->children()[0];
    for (const std::string& key : s->write_set().keys()) {
      dirty_keys_.insert(key);
    }
    dag_->DeleteStateLocked(s, heir);
    // Pass 2 guaranteed no read pins, so nothing can still be reading
    // this state's branch. Ignore NotFound: the branch may never have
    // existed (fast path disabled, or a state recovered from the log).
    if (branch_store_ != nullptr) branch_store_->Release(s->id());
    victims.push_back(s);
    stats->states_deleted++;
  }
  // heir -> flat key list; dedup + one Union per heir at the end keeps
  // this linear in the total number of inherited keys.
  std::unordered_map<State*, std::vector<std::string>> inherited;
  std::unordered_map<State*, StatePtr> heir_ptr;
  for (const StatePtr& victim : victims) {
    StatePtr heir = dag_->ResolveLocked(victim->id());
    if (heir == nullptr) continue;
    std::vector<std::string>& bucket = inherited[heir.get()];
    const auto& own = victim->write_set().keys();
    const auto& passed = victim->inherited_writes().keys();
    bucket.insert(bucket.end(), own.begin(), own.end());
    bucket.insert(bucket.end(), passed.begin(), passed.end());
    heir_ptr[heir.get()] = heir;
  }
  for (auto& [heir_raw, bucket] : inherited) {
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
    KeySet batch;
    for (std::string& k : bucket) batch.Add(std::move(k));
    heir_ptr[heir_raw]->inherited_writes().Union(batch);
  }
}

void GarbageCollector::RecordPromotionPass(GcStats* stats) {
  TARDIS_TRACE_SCOPE("gc", "promote");
  // Only keys whose versions lost their owning state need promotion work;
  // dirty_keys_ was filled while deleting (and persists across runs until
  // processed, so a key is never missed).
  std::unordered_set<std::string> keys;
  keys.swap(dirty_keys_);
  for (const std::string& key : keys) {
    std::vector<VersionEntry> versions = kvmap_->Versions(key);
    if (versions.empty()) continue;

    // Live version ids already present for this key (their record stays).
    std::unordered_set<StateId> live_ids;
    for (const VersionEntry& v : versions) {
      if (!v.state->deleted.load()) live_ids.insert(v.sid);
    }

    // Group dead versions by the live state that inherited their identity
    // (their "promotion target"). Members of one group sit on a single
    // spliced-away chain, so the one with the largest sid supersedes the
    // rest; the winner itself is superseded only if the heir state wrote
    // the key again. Winners stay in place under their original state —
    // Fig. 7 visibility needs only the (immutable) id and fork path, so a
    // version owned by a compressed-away state remains perfectly
    // readable, and nothing has to be re-tagged on later GC cycles.
    std::unordered_map<StateId, StateId> winner;  // heir id -> winning sid
    std::vector<std::pair<VersionEntry, StateId>> dead;  // entry, heir id
    for (const VersionEntry& v : versions) {
      if (!v.state->deleted.load()) continue;
      StatePtr heir = dag_->Resolve(v.sid);
      const StateId heir_id = heir ? heir->id() : kInvalidStateId;
      dead.emplace_back(v, heir_id);
      if (heir_id == kInvalidStateId) continue;  // branch gone: prune
      auto it = winner.find(heir_id);
      if (it == winner.end() || v.sid > it->second) {
        winner[heir_id] = v.sid;
      }
    }
    for (const auto& [v, heir_id] : dead) {
      if (heir_id != kInvalidStateId) {
        const bool is_winner = winner[heir_id] == v.sid;
        const bool heir_rewrote = live_ids.count(heir_id) > 0;
        if (is_winner && !heir_rewrote) {
          stats->versions_promoted++;  // retained as the surviving version
          continue;
        }
      }
      if (kvmap_->RemoveVersion(key, v.sid)) {
        stats->versions_pruned++;
        if (record_store_ != nullptr) {
          record_store_->Delete(EncodeRecordKey(key, v.sid));
        }
      }
    }
  }

  // Reclaim retired skip-list nodes; the map's internal gate guarantees
  // no reader or writer still holds a pointer into a version list.
  kvmap_->DrainRetired();
}

void GarbageCollector::StartBackground(uint64_t interval_ms) {
  std::lock_guard<std::mutex> guard(bg_mu_);
  if (bg_running_) return;
  bg_stop_ = false;
  bg_running_ = true;
  bg_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lk(bg_mu_);
    while (!bg_stop_) {
      bg_cv_.wait_for(lk, std::chrono::milliseconds(interval_ms),
                      [this] { return bg_stop_; });
      if (bg_stop_) break;
      lk.unlock();
      RunOnce();
      lk.lock();
    }
  });
}

void GarbageCollector::StopBackground() {
  {
    std::lock_guard<std::mutex> guard(bg_mu_);
    if (!bg_running_) return;
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (bg_.joinable()) bg_.join();
  std::lock_guard<std::mutex> guard(bg_mu_);
  bg_running_ = false;
}

GcStats GarbageCollector::TotalStats() const {
  GcStats out;
  out.runs = runs_total_->Value();
  out.states_marked = states_marked_total_->Value();
  out.states_deleted = states_deleted_total_->Value();
  out.versions_promoted = versions_promoted_total_->Value();
  out.versions_pruned = versions_pruned_total_->Value();
  return out;
}

}  // namespace tardis
