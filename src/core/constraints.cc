#include "core/constraints.h"

#include "core/state_dag.h"

namespace tardis {

namespace {

// ---- begin constraints -----------------------------------------------------

class AnyBeginC : public BeginConstraint {
 public:
  bool Satisfies(const TxnContext&, const State&) const override {
    return true;
  }
  std::string name() const override { return "Any"; }
};

class ParentBeginC : public BeginConstraint {
 public:
  bool Satisfies(const TxnContext& ctx, const State& s) const override {
    // Before the first commit the client has no parent; the root (id 0)
    // or any state stands in — we accept only the root so behavior is
    // deterministic.
    if (ctx.session_last_commit == nullptr) return s.parents().empty();
    return s.id() == ctx.session_last_commit->id();
  }
  std::string name() const override { return "Parent"; }
};

class AncestorBeginC : public BeginConstraint {
 public:
  bool Satisfies(const TxnContext& ctx, const State& s) const override {
    if (ctx.session_last_commit == nullptr) return true;
    // Read-my-writes: the read state must descend from (or be) the
    // client's last commit.
    return StateDag::DescendantCheck(*ctx.session_last_commit, s);
  }
  bool PrefersSessionTip() const override { return true; }
  std::string name() const override { return "Ancestor"; }
};

class StateIdBeginC : public BeginConstraint {
 public:
  explicit StateIdBeginC(StateId id) : id_(id) {}
  bool Satisfies(const TxnContext&, const State& s) const override {
    return s.id() == id_;
  }
  std::string name() const override {
    return "StateID(" + std::to_string(id_) + ")";
  }

 private:
  const StateId id_;
};

class AndBeginC : public BeginConstraint {
 public:
  explicit AndBeginC(std::vector<BeginConstraintPtr> parts)
      : parts_(std::move(parts)) {}
  bool Satisfies(const TxnContext& ctx, const State& s) const override {
    for (const auto& p : parts_) {
      if (!p->Satisfies(ctx, s)) return false;
    }
    return true;
  }
  std::string name() const override { return Compose("And"); }

 private:
  std::string Compose(const char* op) const {
    std::string out = op;
    out += "(";
    for (size_t i = 0; i < parts_.size(); i++) {
      if (i) out += ",";
      out += parts_[i]->name();
    }
    return out + ")";
  }
  const std::vector<BeginConstraintPtr> parts_;
};

class OrBeginC : public BeginConstraint {
 public:
  explicit OrBeginC(std::vector<BeginConstraintPtr> parts)
      : parts_(std::move(parts)) {}
  bool Satisfies(const TxnContext& ctx, const State& s) const override {
    for (const auto& p : parts_) {
      if (p->Satisfies(ctx, s)) return true;
    }
    return false;
  }
  std::string name() const override { return "Or(...)"; }

 private:
  const std::vector<BeginConstraintPtr> parts_;
};

// ---- end constraints -------------------------------------------------------

class AnyEndC : public EndConstraint {
 public:
  bool StepOk(const TxnContext&, const State&) const override { return true; }
  bool FinalOk(const TxnContext&, const State&) const override {
    return true;
  }
  std::string name() const override { return "Any"; }
};

class SerializabilityEndC : public EndConstraint {
 public:
  bool StepOk(const TxnContext& ctx, const State& next) const override {
    // Backward validation against the concurrently committed state: a
    // read-write conflict (they wrote what we read) forbids serializing
    // us after them with our stale read.
    return !next.write_set().Intersects(ctx.reads);
  }
  bool FinalOk(const TxnContext&, const State&) const override {
    return true;
  }
  std::string name() const override { return "Serializability"; }
};

class SnapshotIsolationEndC : public EndConstraint {
 public:
  bool StepOk(const TxnContext& ctx, const State& next) const override {
    // First-committer-wins: write-write conflicts may not ripple.
    return !next.write_set().Intersects(ctx.writes);
  }
  bool FinalOk(const TxnContext&, const State&) const override {
    return true;
  }
  std::string name() const override { return "SnapshotIsolation"; }
};

class ReadCommittedEndC : public EndConstraint {
 public:
  bool StepOk(const TxnContext&, const State&) const override { return true; }
  bool FinalOk(const TxnContext&, const State&) const override {
    return true;
  }
  std::string name() const override { return "ReadCommitted"; }
};

class NoBranchingEndC : public EndConstraint {
 public:
  bool StepOk(const TxnContext&, const State&) const override { return true; }
  bool FinalOk(const TxnContext&, const State& parent) const override {
    return parent.children().empty();
  }
  std::string name() const override { return "NoBranching"; }
};

class KBranchingEndC : public EndConstraint {
 public:
  explicit KBranchingEndC(uint32_t k) : k_(k) {}
  bool StepOk(const TxnContext&, const State&) const override { return true; }
  bool FinalOk(const TxnContext&, const State& parent) const override {
    // Table 1: "state has fewer than k-1 children".
    return parent.children().size() + 1 < k_;
  }
  std::string name() const override {
    return "KBranching(" + std::to_string(k_) + ")";
  }

 private:
  const uint32_t k_;
};

class StateIdEndC : public EndConstraint {
 public:
  explicit StateIdEndC(StateId target) : target_(target) {}
  bool StepOk(const TxnContext&, const State& next) const override {
    // Only ripple toward the target: through its ancestors.
    return next.id() <= target_;
  }
  bool FinalOk(const TxnContext&, const State& parent) const override {
    return parent.id() == target_;
  }
  std::string name() const override {
    return "StateID(" + std::to_string(target_) + ")";
  }

 private:
  const StateId target_;
};

class AndEndC : public EndConstraint {
 public:
  explicit AndEndC(std::vector<EndConstraintPtr> parts)
      : parts_(std::move(parts)) {}
  bool StepOk(const TxnContext& ctx, const State& next) const override {
    for (const auto& p : parts_) {
      if (!p->StepOk(ctx, next)) return false;
    }
    return true;
  }
  bool FinalOk(const TxnContext& ctx, const State& parent) const override {
    for (const auto& p : parts_) {
      if (!p->FinalOk(ctx, parent)) return false;
    }
    return true;
  }
  std::string name() const override {
    std::string out = "And(";
    for (size_t i = 0; i < parts_.size(); i++) {
      if (i) out += ",";
      out += parts_[i]->name();
    }
    return out + ")";
  }

 private:
  const std::vector<EndConstraintPtr> parts_;
};

class OrEndC : public EndConstraint {
 public:
  explicit OrEndC(std::vector<EndConstraintPtr> parts)
      : parts_(std::move(parts)) {}
  bool StepOk(const TxnContext& ctx, const State& next) const override {
    for (const auto& p : parts_) {
      if (p->StepOk(ctx, next)) return true;
    }
    return false;
  }
  bool FinalOk(const TxnContext& ctx, const State& parent) const override {
    for (const auto& p : parts_) {
      if (p->FinalOk(ctx, parent)) return true;
    }
    return false;
  }
  std::string name() const override { return "Or(...)"; }

 private:
  const std::vector<EndConstraintPtr> parts_;
};

}  // namespace

BeginConstraintPtr AnyBegin() { return std::make_shared<AnyBeginC>(); }
BeginConstraintPtr ParentBegin() { return std::make_shared<ParentBeginC>(); }
BeginConstraintPtr AncestorBegin() {
  return std::make_shared<AncestorBeginC>();
}
BeginConstraintPtr StateIdBegin(StateId id) {
  return std::make_shared<StateIdBeginC>(id);
}
BeginConstraintPtr AndBegin(std::vector<BeginConstraintPtr> parts) {
  return std::make_shared<AndBeginC>(std::move(parts));
}
BeginConstraintPtr OrBegin(std::vector<BeginConstraintPtr> parts) {
  return std::make_shared<OrBeginC>(std::move(parts));
}

EndConstraintPtr AnyEnd() { return std::make_shared<AnyEndC>(); }
EndConstraintPtr SerializabilityEnd() {
  return std::make_shared<SerializabilityEndC>();
}
EndConstraintPtr SnapshotIsolationEnd() {
  return std::make_shared<SnapshotIsolationEndC>();
}
EndConstraintPtr ReadCommittedEnd() {
  return std::make_shared<ReadCommittedEndC>();
}
EndConstraintPtr NoBranchingEnd() {
  return std::make_shared<NoBranchingEndC>();
}
EndConstraintPtr KBranchingEnd(uint32_t k) {
  return std::make_shared<KBranchingEndC>(k);
}
EndConstraintPtr StateIdEnd(StateId target) {
  return std::make_shared<StateIdEndC>(target);
}
EndConstraintPtr AndEnd(std::vector<EndConstraintPtr> parts) {
  return std::make_shared<AndEndC>(std::move(parts));
}
EndConstraintPtr OrEnd(std::vector<EndConstraintPtr> parts) {
  return std::make_shared<OrEndC>(std::move(parts));
}

}  // namespace tardis
