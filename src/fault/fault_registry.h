// FaultRegistry: process-wide, seeded fault injection at named points.
//
// Code under test declares fault points with the TARDIS_FAULT_POINT /
// TARDIS_FAULT_HIT macros (fault/fault_points.h); a test or the chaos
// driver arms behaviors at those points:
//
//   fault::FaultSpec spec;
//   spec.kind = fault::FaultKind::kError;
//   spec.code = Code::kIOError;        // e.g. a simulated ENOSPC
//   spec.max_triggers = 1;
//   fault::FaultRegistry::Global().Arm("wal.append.before_write", spec);
//
// An armed point can return an error Status (the caller unwinds through
// normal error handling — never a crash), sleep for a fixed delay,
// request a simulated crash (a registered handler freezes the site's
// FaultEnv; the driver then tears the site down and restarts it), or cap
// the byte count of a write (short-write simulation, consumed by sites
// that call WriteCap()).
//
// Everything is deterministic under a seed: trigger decisions come from
// a private xorshift PRNG reseeded per schedule, and evaluation order in
// the single-threaded chaos driver is fixed, so a failing seed replays
// the identical schedule.
//
// Performance: the only cost on hot paths while *nothing* is armed is
// one relaxed atomic load and a predicted-untaken branch (see
// fault_points.h); the registry mutex is touched only when armed.

#ifndef TARDIS_FAULT_FAULT_REGISTRY_H_
#define TARDIS_FAULT_FAULT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace tardis {
namespace fault {

enum class FaultKind {
  kError,       ///< the point returns an injected Status
  kDelay,       ///< the point sleeps for delay_us, then proceeds
  kCrash,       ///< simulate a crash: freeze the env, return an IOError
  kLimitWrite,  ///< cap bytes per write at WriteCap() sites (short writes)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  /// kError / kCrash: the Status code injected (crash always uses
  /// kIOError) and an optional message suffix.
  Code code = Code::kIOError;
  std::string message;
  /// Chance that an eligible hit triggers (evaluated after `skip`).
  double probability = 1.0;
  /// The first `skip` hits of the point pass through untriggered.
  uint64_t skip = 0;
  /// Total triggers before the spec disarms itself; -1 = unlimited.
  /// Crash specs always disarm after firing once.
  int64_t max_triggers = -1;
  /// kDelay: how long to sleep.
  uint64_t delay_us = 0;
  /// kLimitWrite: max bytes a single write may move (>= 1).
  uint64_t limit_bytes = 1;
};

class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Arms (or replaces) the behavior at `point`. Trigger bookkeeping
  /// (skip/max_triggers) restarts from zero.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  /// Disarms every point and clears any pending crash request.
  void DisarmAll();

  /// Reseeds the trigger PRNG (call once per chaos schedule).
  void Reseed(uint64_t seed);

  /// Macro entry: evaluates the point, applying whatever is armed.
  /// Returns OK when nothing triggers.
  Status OnPoint(const char* point);

  /// Short-write sites: the byte budget for one write of `requested`
  /// bytes. Returns `requested` unless a kLimitWrite spec triggers.
  size_t WriteCap(const char* point, size_t requested);

  /// Crash plumbing: the handler runs inside the triggering call (it
  /// should only flip cheap state, e.g. FaultEnv::MarkCrashed); the
  /// driver polls ConsumeCrashRequest() after each schedule step to
  /// learn that — and where — a crash fired.
  void SetCrashHandler(std::function<void(const std::string& point)> handler);
  bool ConsumeCrashRequest(std::string* point);

  // ---- counters (cumulative, process lifetime) ---------------------------
  uint64_t points_hit() const { return points_hit_.load(); }
  uint64_t errors_injected() const { return errors_injected_.load(); }
  uint64_t delays_injected() const { return delays_injected_.load(); }
  uint64_t crashes_simulated() const { return crashes_simulated_.load(); }
  uint64_t short_writes() const { return short_writes_.load(); }

  // Frame-level counters incremented by FaultyTransport.
  std::atomic<uint64_t> frames_dropped{0};
  std::atomic<uint64_t> frames_duplicated{0};
  std::atomic<uint64_t> frames_reordered{0};

  /// Exports every fault counter into `registry` as callback-backed
  /// metrics (unlabeled: fault injection is process-wide). Idempotent;
  /// the registry may die before this singleton, never the reverse.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  FaultRegistry() = default;

  struct Armed {
    FaultSpec spec;
    uint64_t hits = 0;      // evaluations since Arm()
    int64_t triggered = 0;  // times the behavior actually fired
  };

  /// Decides whether `point` triggers now; fills `spec` when it does.
  bool ShouldTrigger(const char* point, FaultSpec* spec);
  void RecomputeArmedFlagLocked();

  mutable std::mutex mu_;
  std::map<std::string, Armed> armed_;
  Random rng_{0x7A4D15};
  std::function<void(const std::string&)> crash_handler_;
  std::string crash_point_;
  bool crash_pending_ = false;

  std::atomic<uint64_t> points_hit_{0};
  std::atomic<uint64_t> errors_injected_{0};
  std::atomic<uint64_t> delays_injected_{0};
  std::atomic<uint64_t> crashes_simulated_{0};
  std::atomic<uint64_t> short_writes_{0};
};

}  // namespace fault
}  // namespace tardis

#endif  // TARDIS_FAULT_FAULT_REGISTRY_H_
