// Env: the file-operations seam between the storage layer and the OS.
//
// Wal, Pager and CommitLog perform every file operation through this
// interface instead of raw POSIX calls, so a test environment can
// interpose short writes, ENOSPC, fsync failures, torn tails and whole
// crash-restart cycles (see fault/fault_env.h) without patching storage
// code. The default implementation (Env::Posix()) is a thin passthrough
// that additionally hardens the raw syscalls: partial writes and EINTR
// are resumed, so a short write from the kernel is never surfaced as
// data loss.
//
// One File object per on-disk file; callers serialize access themselves
// (Wal and Pager both already hold a mutex around file operations).

#ifndef TARDIS_FAULT_ENV_H_
#define TARDIS_FAULT_ENV_H_

#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace tardis {
namespace fault {

/// An open file. Append maintains its own end-of-file cursor; PRead and
/// PWrite are positional and do not disturb it.
class File {
 public:
  virtual ~File() = default;

  /// Writes `data` at the end of the file. Resumes partial writes and
  /// EINTR internally; on a hard mid-write error the file may contain a
  /// prefix of `data` (Size() reflects what actually landed).
  virtual Status Append(const Slice& data) = 0;

  /// Reads up to `n` bytes at `offset` into `scratch`. Returns the byte
  /// count actually read — short only at end-of-file.
  virtual StatusOr<size_t> PRead(uint64_t offset, size_t n,
                                 char* scratch) = 0;

  /// Writes all of `data` at `offset`, extending the file if needed.
  virtual Status PWrite(uint64_t offset, const Slice& data) = 0;

  /// Forces written data to stable storage.
  virtual Status Sync() = 0;

  /// Truncates (or extends with zeros) to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  virtual StatusOr<uint64_t> Size() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` read-write, creating it if absent.
  virtual StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) = 0;

  /// Creates a directory; success if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Atomically replaces `to` with `from`.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Deletes a file; success if it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// The process-wide passthrough POSIX environment.
  static Env* Posix();
};

/// Resolves a caller-supplied environment: null means Env::Posix().
inline Env* ResolveEnv(Env* env) { return env != nullptr ? env : Env::Posix(); }

}  // namespace fault
}  // namespace tardis

#endif  // TARDIS_FAULT_ENV_H_
