#include "fault/fault_registry.h"

#include <chrono>
#include <thread>

#include "fault/fault_points.h"

namespace tardis {
namespace fault {

std::atomic<bool> g_faults_armed{false};

Status EvaluatePoint(const char* point) {
  return FaultRegistry::Global().OnPoint(point);
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();  // never destroyed
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  if (spec.limit_bytes == 0) spec.limit_bytes = 1;
  std::lock_guard<std::mutex> guard(mu_);
  Armed armed;
  armed.spec = std::move(spec);
  armed_[point] = std::move(armed);
  RecomputeArmedFlagLocked();
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> guard(mu_);
  armed_.erase(point);
  RecomputeArmedFlagLocked();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> guard(mu_);
  armed_.clear();
  crash_pending_ = false;
  crash_point_.clear();
  RecomputeArmedFlagLocked();
}

void FaultRegistry::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> guard(mu_);
  rng_ = Random(seed);
}

void FaultRegistry::RecomputeArmedFlagLocked() {
  g_faults_armed.store(!armed_.empty(), std::memory_order_relaxed);
}

bool FaultRegistry::ShouldTrigger(const char* point, FaultSpec* spec) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = armed_.find(point);
  if (it == armed_.end()) return false;
  Armed& armed = it->second;
  points_hit_.fetch_add(1, std::memory_order_relaxed);
  if (armed.hits++ < armed.spec.skip) return false;
  if (armed.spec.probability < 1.0 && !rng_.Bernoulli(armed.spec.probability)) {
    return false;
  }
  armed.triggered++;
  *spec = armed.spec;
  const bool exhausted =
      armed.spec.kind == FaultKind::kCrash ||
      (armed.spec.max_triggers >= 0 &&
       armed.triggered >= armed.spec.max_triggers);
  if (exhausted) {
    armed_.erase(it);
    RecomputeArmedFlagLocked();
  }
  return true;
}

Status FaultRegistry::OnPoint(const char* point) {
  FaultSpec spec;
  if (!ShouldTrigger(point, &spec)) return Status::OK();

  switch (spec.kind) {
    case FaultKind::kDelay:
      delays_injected_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_us));
      return Status::OK();

    case FaultKind::kCrash: {
      crashes_simulated_.fetch_add(1, std::memory_order_relaxed);
      std::function<void(const std::string&)> handler;
      {
        std::lock_guard<std::mutex> guard(mu_);
        crash_pending_ = true;
        crash_point_ = point;
        handler = crash_handler_;
      }
      if (handler) handler(point);
      return Status::IOError(std::string("injected crash at ") + point);
    }

    case FaultKind::kLimitWrite:
      // A write-cap spec armed at a plain fault point has no byte count
      // to cap; treat it as a no-op rather than an error.
      return Status::OK();

    case FaultKind::kError:
      break;
  }

  errors_injected_.fetch_add(1, std::memory_order_relaxed);
  std::string msg = std::string("injected fault at ") + point;
  if (!spec.message.empty()) msg += ": " + spec.message;
  switch (spec.code) {
    case Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Code::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case Code::kBusy:
      return Status::Busy(std::move(msg));
    case Code::kAborted:
      return Status::Aborted(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

size_t FaultRegistry::WriteCap(const char* point, size_t requested) {
  FaultSpec spec;
  if (!ShouldTrigger(point, &spec)) return requested;
  if (spec.kind != FaultKind::kLimitWrite) {
    // Non-cap specs at a cap site still make sense for delays; errors
    // cannot be returned from here, so only the delay side effect runs.
    if (spec.kind == FaultKind::kDelay) {
      delays_injected_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_us));
    }
    return requested;
  }
  if (requested <= spec.limit_bytes) return requested;
  short_writes_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<size_t>(spec.limit_bytes);
}

void FaultRegistry::SetCrashHandler(
    std::function<void(const std::string& point)> handler) {
  std::lock_guard<std::mutex> guard(mu_);
  crash_handler_ = std::move(handler);
}

bool FaultRegistry::ConsumeCrashRequest(std::string* point) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!crash_pending_) return false;
  if (point != nullptr) *point = crash_point_;
  crash_pending_ = false;
  crash_point_.clear();
  return true;
}

void FaultRegistry::BindMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter(
      "tardis_fault_points_hit_total",
      "Fault-point evaluations while the point was armed",
      [this] { return points_hit(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_errors_injected_total",
      "Error Statuses injected at fault points",
      [this] { return errors_injected(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_delays_injected_total", "Delays injected at fault points",
      [this] { return delays_injected(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_crashes_simulated_total",
      "Simulated crashes triggered at fault points",
      [this] { return crashes_simulated(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_short_writes_total",
      "Writes capped below their requested byte count",
      [this] { return short_writes(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_net_frames_dropped_total",
      "Frames dropped by FaultyTransport fault schedules",
      [this] { return frames_dropped.load(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_net_frames_duplicated_total",
      "Frames duplicated by FaultyTransport fault schedules",
      [this] { return frames_duplicated.load(); }, {}, this);
  registry->RegisterCallbackCounter(
      "tardis_fault_net_frames_reordered_total",
      "Frames held back for reordering by FaultyTransport",
      [this] { return frames_reordered.load(); }, {}, this);
}

}  // namespace fault
}  // namespace tardis
