// FaultEnv: an Env decorator that makes crashes, torn tails and short
// writes injectable.
//
// Crash model (the classic fault-injection-Env design): the environment
// tracks, per file, the content as of the last successful Sync (the
// "durable image"). MarkCrashed() freezes the environment — every
// subsequent file operation fails with an IOError, so nothing after the
// crash instant reaches disk. The driver then destroys the site's
// objects and calls ApplyCrash(), which rewrites each file with a
// deterministic, seeded post-crash outcome:
//
//   kLoseUnsynced  the durable image (everything unsynced vanishes)
//   kTornTail      durable image + a prefix of the unsynced suffix cut
//                  at a seeded byte (torn final record)
//   kKeepAll       the full content (the unsynced writes happened to
//                  land) — also a legal crash outcome
//   kSeeded        one of the above, chosen per file by the PRNG
//
// Reopening the store against the same FaultEnv then exercises real
// recovery against that disk state.
//
// Short writes ride the fault registry: FaultyFile::Append consults
// WriteCap("env.append", n); when a kLimitWrite spec triggers, only the
// capped prefix lands and the op returns an IOError — exactly what a
// hard ENOSPC mid-write does, which is what Wal's truncate-repair path
// must survive.

#ifndef TARDIS_FAULT_FAULT_ENV_H_
#define TARDIS_FAULT_FAULT_ENV_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fault/env.h"
#include "util/random.h"

namespace tardis {
namespace fault {

enum class CrashMode {
  kSeeded,        ///< per-file seeded choice among the outcomes below
  kLoseUnsynced,  ///< revert to the last synced image
  kTornTail,      ///< synced image + seeded prefix of the unsynced suffix
  kKeepAll,       ///< keep everything (unsynced writes survived)
};

class FaultEnv : public Env {
 public:
  explicit FaultEnv(uint64_t seed, Env* base = nullptr);

  StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

  /// Freezes the environment at the crash instant. All further file
  /// operations fail with an IOError until ApplyCrash().
  void MarkCrashed() { crashed_.store(true, std::memory_order_release); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Rewrites every tracked file with its seeded post-crash content and
  /// unfreezes the environment. Call with all File handles closed.
  Status ApplyCrash(CrashMode mode = CrashMode::kSeeded);

  /// Files whose unsynced tail was (fully or partly) discarded by the
  /// last ApplyCrash — visibility for tests and the chaos log.
  uint64_t files_rewound() const { return files_rewound_.load(); }

 private:
  friend class FaultyFile;

  struct FileState {
    std::string synced;  ///< content as of the last successful Sync
  };

  /// Called by FaultyFile after a successful Sync: captures the file's
  /// current content as its durable image.
  void RecordSync(const std::string& path, File* file);

  /// Current on-disk content of `path`, read via `file` if non-null,
  /// else through a fresh base-env handle (empty string if absent).
  StatusOr<std::string> ReadThrough(const std::string& path, File* file);

  Env* const base_;
  std::atomic<bool> crashed_{false};
  std::mutex mu_;
  std::map<std::string, FileState> files_;
  Random rng_;
  std::atomic<uint64_t> files_rewound_{0};
};

}  // namespace fault
}  // namespace tardis

#endif  // TARDIS_FAULT_FAULT_ENV_H_
