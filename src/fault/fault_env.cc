#include "fault/fault_env.h"

#include <utility>
#include <vector>

#include "fault/fault_points.h"
#include "fault/fault_registry.h"

namespace tardis {
namespace fault {

namespace {

Status CrashedError() {
  return Status::IOError("simulated crash: environment is frozen");
}

}  // namespace

/// A File that forwards to a base File while (a) refusing every
/// operation once the owning FaultEnv is crashed, (b) applying the
/// "env.append" write cap for short-write injection, and (c) recording
/// the durable image on each successful Sync.
class FaultyFile : public File {
 public:
  FaultyFile(FaultEnv* env, std::string path, std::unique_ptr<File> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    if (env_->crashed()) return CrashedError();
    if (FaultsArmed()) {
      const size_t cap =
          FaultRegistry::Global().WriteCap("env.append", data.size());
      if (cap < data.size()) {
        // A hard mid-write failure (e.g. ENOSPC): the capped prefix
        // lands, then the operation errors out. Size() reflects the
        // prefix, which is what lets Wal truncate-repair.
        Status prefix = base_->Append(Slice(data.data(), cap));
        if (!prefix.ok()) return prefix;
        return Status::IOError("injected short write at env.append");
      }
    }
    return base_->Append(data);
  }

  StatusOr<size_t> PRead(uint64_t offset, size_t n, char* scratch) override {
    if (env_->crashed()) return CrashedError();
    return base_->PRead(offset, n, scratch);
  }

  Status PWrite(uint64_t offset, const Slice& data) override {
    if (env_->crashed()) return CrashedError();
    return base_->PWrite(offset, data);
  }

  Status Sync() override {
    if (env_->crashed()) return CrashedError();
    Status s = base_->Sync();
    if (s.ok()) env_->RecordSync(path_, base_.get());
    return s;
  }

  Status Truncate(uint64_t size) override {
    if (env_->crashed()) return CrashedError();
    return base_->Truncate(size);
  }

  StatusOr<uint64_t> Size() override {
    if (env_->crashed()) return CrashedError();
    return base_->Size();
  }

 private:
  FaultEnv* const env_;
  const std::string path_;
  std::unique_ptr<File> base_;
};

FaultEnv::FaultEnv(uint64_t seed, Env* base)
    : base_(ResolveEnv(base)), rng_(seed) {}

StatusOr<std::unique_ptr<File>> FaultEnv::OpenFile(const std::string& path) {
  if (crashed()) return CrashedError();
  auto base_file = base_->OpenFile(path);
  if (!base_file.ok()) return base_file.status();
  {
    // A file (re)opened while healthy starts with its current content as
    // the durable image: whatever recovery already read back is, by
    // definition, on disk.
    std::lock_guard<std::mutex> guard(mu_);
    if (files_.find(path) == files_.end()) {
      auto content = ReadThrough(path, base_file->get());
      if (!content.ok()) return content.status();
      files_[path].synced = std::move(content.value());
    }
  }
  return StatusOr<std::unique_ptr<File>>(std::unique_ptr<File>(
      new FaultyFile(this, path, std::move(base_file.value()))));
}

Status FaultEnv::CreateDir(const std::string& path) {
  if (crashed()) return CrashedError();
  return base_->CreateDir(path);
}

Status FaultEnv::RenameFile(const std::string& from, const std::string& to) {
  if (crashed()) return CrashedError();
  Status s = base_->RenameFile(from, to);
  if (s.ok()) {
    // rename() is atomic and durable-ish for our purposes: the renamed
    // file's durable image moves with it.
    std::lock_guard<std::mutex> guard(mu_);
    auto it = files_.find(from);
    if (it != files_.end()) {
      files_[to] = std::move(it->second);
      files_.erase(it);
    } else {
      files_.erase(to);
    }
  }
  return s;
}

Status FaultEnv::RemoveFile(const std::string& path) {
  if (crashed()) return CrashedError();
  Status s = base_->RemoveFile(path);
  if (s.ok()) {
    std::lock_guard<std::mutex> guard(mu_);
    files_.erase(path);
  }
  return s;
}

bool FaultEnv::FileExists(const std::string& path) {
  if (crashed()) return false;
  return base_->FileExists(path);
}

void FaultEnv::RecordSync(const std::string& path, File* file) {
  auto content = ReadThrough(path, file);
  if (!content.ok()) return;  // keep the previous durable image
  std::lock_guard<std::mutex> guard(mu_);
  files_[path].synced = std::move(content.value());
}

StatusOr<std::string> FaultEnv::ReadThrough(const std::string& path,
                                            File* file) {
  std::unique_ptr<File> opened;
  if (file == nullptr) {
    if (!base_->FileExists(path)) return std::string();
    auto f = base_->OpenFile(path);
    if (!f.ok()) return f.status();
    opened = std::move(f.value());
    file = opened.get();
  }
  auto size = file->Size();
  if (!size.ok()) return size.status();
  std::string content(static_cast<size_t>(size.value()), '\0');
  if (!content.empty()) {
    auto n = file->PRead(0, content.size(), content.data());
    if (!n.ok()) return n.status();
    content.resize(n.value());
  }
  return content;
}

Status FaultEnv::ApplyCrash(CrashMode mode) {
  // Snapshot the plan under the lock, write files outside it.
  struct Plan {
    std::string path;
    std::string content;
    bool rewound;
  };
  std::vector<Plan> plans;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (auto& [path, state] : files_) {
      // Current on-disk content (reads bypass the crashed flag by going
      // through the base env directly).
      auto current_or = ReadThrough(path, nullptr);
      if (!current_or.ok()) return current_or.status();
      std::string current = std::move(current_or.value());

      CrashMode eff = mode;
      if (eff == CrashMode::kSeeded) {
        switch (rng_.Uniform(3)) {
          case 0: eff = CrashMode::kLoseUnsynced; break;
          case 1: eff = CrashMode::kTornTail; break;
          default: eff = CrashMode::kKeepAll; break;
        }
      }

      Plan plan;
      plan.path = path;
      switch (eff) {
        case CrashMode::kKeepAll:
          plan.content = current;
          break;
        case CrashMode::kLoseUnsynced:
          plan.content = state.synced;
          break;
        case CrashMode::kTornTail: {
          plan.content = state.synced;
          if (current.size() > state.synced.size()) {
            // Keep a seeded prefix (possibly zero bytes) of the
            // unsynced suffix — a torn final record.
            const uint64_t extra = current.size() - state.synced.size();
            const uint64_t keep = rng_.Uniform(extra + 1);
            plan.content.append(current.data() + state.synced.size(),
                                static_cast<size_t>(keep));
          }
          break;
        }
        case CrashMode::kSeeded:
          break;  // unreachable
      }
      plan.rewound = plan.content.size() < current.size();
      // The post-crash content is on disk, hence durable.
      state.synced = plan.content;
      plans.push_back(std::move(plan));
    }
  }

  for (const Plan& plan : plans) {
    auto f = base_->OpenFile(plan.path);
    if (!f.ok()) return f.status();
    File* file = f->get();
    TARDIS_RETURN_IF_ERROR(file->Truncate(0));
    if (!plan.content.empty()) {
      TARDIS_RETURN_IF_ERROR(file->PWrite(0, Slice(plan.content)));
    }
    TARDIS_RETURN_IF_ERROR(file->Sync());
    if (plan.rewound) files_rewound_.fetch_add(1);
  }

  crashed_.store(false, std::memory_order_release);
  return Status::OK();
}

}  // namespace fault
}  // namespace tardis
