// Fault-point macros. A fault point is a named site where the fault
// registry may inject an error, a delay or a simulated crash:
//
//   Status Wal::Append(const Slice& payload) {
//     TARDIS_FAULT_POINT("wal.append.before_write");  // may early-return
//     ...
//   }
//
// When nothing is armed anywhere in the process, a point costs one
// relaxed atomic load and a predicted-untaken branch — cheap enough to
// leave compiled into release builds (the bench acceptance bound is a
// < 2% regression with injection compiled in but disabled). Define
// TARDIS_DISABLE_FAULT_POINTS to compile every point to nothing.
//
// Catalog of points currently declared (keep DESIGN.md §8 in sync):
//   wal.append.before_write   injected before the record frame is written
//   wal.append.after_write    after the write, before any fsync
//   wal.sync                  Wal::Sync and the kSync per-append fsync
//   wal.read                  Wal::ReadAll
//   wal.truncate              Wal::Truncate
//   pager.read_page           Pager::ReadPage
//   pager.write_page          Pager::WritePage
//   pager.extend              Pager::AllocatePage file extension
//   pager.sync                Pager::Sync
//   store.checkpoint.rename   before the checkpoint rename-into-place
//   env.append                FaultEnv short-write cap (kLimitWrite)
//   net.tcp.send              TcpTransport send() byte cap (kLimitWrite)
//   twopc.prepare.persist     before a prepare record is logged (an
//                             injected error turns the vote into abort)
//   twopc.decide.apply        before a decide-commit is applied locally
//   twopc.router.before_decide router, between collecting all prepare
//                             acks and sending the first decide

#ifndef TARDIS_FAULT_FAULT_POINTS_H_
#define TARDIS_FAULT_FAULT_POINTS_H_

#include <atomic>

#include "util/status.h"

namespace tardis {
namespace fault {

/// True while at least one fault spec is armed in the process. Defined
/// in fault_registry.cc; read with relaxed ordering on hot paths.
extern std::atomic<bool> g_faults_armed;

inline bool FaultsArmed() {
  return g_faults_armed.load(std::memory_order_relaxed);
}

/// Cold-path forwarder to FaultRegistry::Global().OnPoint(point).
Status EvaluatePoint(const char* point);

}  // namespace fault
}  // namespace tardis

#if defined(TARDIS_DISABLE_FAULT_POINTS)

#define TARDIS_FAULT_POINT(point) \
  do {                            \
  } while (0)
#define TARDIS_FAULT_HIT(point) \
  do {                          \
  } while (0)

#else

/// In a function returning Status: an armed error/crash injects an early
/// error return; delays sleep and fall through.
#define TARDIS_FAULT_POINT(point)                                           \
  do {                                                                      \
    if (__builtin_expect(::tardis::fault::FaultsArmed(), 0)) {              \
      ::tardis::Status _tardis_fault_s =                                    \
          ::tardis::fault::EvaluatePoint(point);                            \
      if (!_tardis_fault_s.ok()) return _tardis_fault_s;                    \
    }                                                                       \
  } while (0)

/// In non-Status contexts: evaluates side effects (delay, crash request,
/// counters) and discards the injected error.
#define TARDIS_FAULT_HIT(point)                                 \
  do {                                                          \
    if (__builtin_expect(::tardis::fault::FaultsArmed(), 0)) {  \
      (void)::tardis::fault::EvaluatePoint(point);              \
    }                                                           \
  } while (0)

#endif  // TARDIS_DISABLE_FAULT_POINTS

#endif  // TARDIS_FAULT_FAULT_POINTS_H_
