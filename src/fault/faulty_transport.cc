#include "fault/faulty_transport.h"

#include <utility>

#include "fault/fault_registry.h"

namespace tardis {
namespace fault {

FaultyTransport::FaultyTransport(Transport* base,
                                 FaultyTransportOptions options)
    : base_(base), options_(options), rng_(options.seed) {
  held_.resize(base_->num_sites());
}

FaultyTransport::~FaultyTransport() { UnbindMetrics(); }

void FaultyTransport::Send(uint32_t from, uint32_t to, ReplMessage msg) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (to >= held_.size() || to == from) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  bool drop = false, duplicate = false;
  uint32_t hold_polls = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!lossless_) {
      if (options_.drop_prob > 0.0 && rng_.Bernoulli(options_.drop_prob)) {
        drop = true;
      } else {
        if (options_.duplicate_prob > 0.0 &&
            rng_.Bernoulli(options_.duplicate_prob)) {
          duplicate = true;
        }
        if (options_.reorder_prob > 0.0 &&
            rng_.Bernoulli(options_.reorder_prob)) {
          hold_polls = static_cast<uint32_t>(
              rng_.Range(1, options_.max_hold_polls > 0
                                ? options_.max_hold_polls
                                : 1));
        }
      }
    }
    if (drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      FaultRegistry::Global().frames_dropped.fetch_add(1);
      return;
    }
    if (hold_polls > 0) {
      FaultRegistry::Global().frames_reordered.fetch_add(1);
      if (duplicate) {
        FaultRegistry::Global().frames_duplicated.fetch_add(1);
        held_[to].push_back(Held{msg, from, hold_polls});
      }
      held_[to].push_back(Held{std::move(msg), from, hold_polls});
      return;
    }
  }

  if (duplicate) {
    FaultRegistry::Global().frames_duplicated.fetch_add(1);
    base_->Send(from, to, msg);
  }
  base_->Send(from, to, std::move(msg));
}

void FaultyTransport::Broadcast(uint32_t from, ReplMessage msg) {
  // Decompose into per-peer sends so each link makes its own fault
  // decision — a broadcast may reach some peers and not others.
  const size_t n = held_.size();
  for (uint32_t to = 0; to < n; ++to) {
    if (to == from) continue;
    Send(from, to, msg);
  }
}

bool FaultyTransport::Receive(uint32_t site, ReplMessage* msg) {
  if (site < held_.size()) {
    std::lock_guard<std::mutex> guard(mu_);
    auto& q = held_[site];
    // One poll tick: age every held frame, releasing those that are due
    // into the base fabric (they re-enter behind anything already
    // queued, which is the reordering).
    for (size_t i = 0; i < q.size();) {
      if (q[i].polls_left <= 1 || lossless_) {
        Held h = std::move(q[i]);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        base_->Send(h.from, site, std::move(h.msg));
      } else {
        --q[i].polls_left;
        ++i;
      }
    }
  }
  if (!base_->Receive(site, msg)) return false;
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultyTransport::HasInflight() const {
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& q : held_) {
      if (!q.empty()) return true;
    }
  }
  return base_->HasInflight();
}

void FaultyTransport::SetLossless(bool lossless) {
  std::lock_guard<std::mutex> guard(mu_);
  lossless_ = lossless;
}

}  // namespace fault
}  // namespace tardis
