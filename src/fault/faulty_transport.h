// FaultyTransport: a Transport decorator that injects seeded network
// faults — drop, duplicate, reorder (hold-back), delay — plus partition
// schedules, over any base transport (SimNetwork or TcpTransport).
//
// Determinism: every decision comes from a private xorshift PRNG seeded
// at construction, and "time" is not wall-clock but Receive polls — a
// held message carries a countdown decremented once per Receive(site)
// call and is released into the ready queue when it reaches zero. Under
// the single-threaded chaos driver (which pumps replicators one poll at
// a time) the same seed therefore yields the identical delivery
// schedule, byte for byte.
//
// SetLossless(true) turns the decorator into a passthrough (no drops,
// no dups, no new holds) while still draining already-held messages —
// the chaos driver flips this on for the healing phase so convergence
// is checked over a reliable network, as the paper's anti-entropy
// assumes fair-lossy links (every message retransmitted infinitely
// often eventually arrives).

#ifndef TARDIS_FAULT_FAULTY_TRANSPORT_H_
#define TARDIS_FAULT_FAULTY_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "net/transport.h"
#include "util/random.h"

namespace tardis {
namespace fault {

struct FaultyTransportOptions {
  uint64_t seed = 1;
  /// Chance a frame is silently dropped.
  double drop_prob = 0.0;
  /// Chance a delivered frame is sent twice.
  double duplicate_prob = 0.0;
  /// Chance a frame is held back (reordered past later sends).
  double reorder_prob = 0.0;
  /// Held frames release after Uniform[1, max_hold_polls] Receive polls
  /// on the destination site.
  uint32_t max_hold_polls = 8;
};

class FaultyTransport : public Transport {
 public:
  /// Does not own `base`; caller keeps it alive.
  FaultyTransport(Transport* base, FaultyTransportOptions options);
  ~FaultyTransport() override;

  size_t num_sites() const override { return base_->num_sites(); }
  void Send(uint32_t from, uint32_t to, ReplMessage msg) override;
  void Broadcast(uint32_t from, ReplMessage msg) override;
  bool Receive(uint32_t site, ReplMessage* msg) override;
  bool HasInflight() const override;

  void Partition(uint32_t a, uint32_t b) override { base_->Partition(a, b); }
  void Heal(uint32_t a, uint32_t b) override { base_->Heal(a, b); }
  void HealAll() override { base_->HealAll(); }

  /// Passthrough mode: no new faults, held messages still drain.
  void SetLossless(bool lossless);

 private:
  struct Held {
    ReplMessage msg;
    uint32_t from;
    uint32_t polls_left;
  };

  Transport* const base_;
  const FaultyTransportOptions options_;
  mutable std::mutex mu_;
  Random rng_;
  bool lossless_ = false;
  /// held_[site]: frames delayed for reordering, keyed by destination.
  std::vector<std::deque<Held>> held_;
};

}  // namespace fault
}  // namespace tardis

#endif  // TARDIS_FAULT_FAULTY_TRANSPORT_H_
