#include "fault/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tardis {
namespace fault {

namespace {

Status ErrnoError(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

class PosixFile : public File {
 public:
  PosixFile(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                                 static_cast<off_t>(size_ + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        // A prefix may have landed; keep Size() honest so the caller can
        // truncate back to the pre-append length.
        size_ += done;
        return ErrnoError("append");
      }
      done += static_cast<size_t>(n);
    }
    size_ += data.size();
    return Status::OK();
  }

  StatusOr<size_t> PRead(uint64_t offset, size_t n, char* scratch) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, scratch + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("pread");
      }
      if (r == 0) break;  // end of file
      done += static_cast<size_t>(r);
    }
    return done;
  }

  Status PWrite(uint64_t offset, const Slice& data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                                 static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (offset + done > size_) size_ = offset + done;
        return ErrnoError("pwrite");
      }
      done += static_cast<size_t>(n);
    }
    if (offset + data.size() > size_) size_ = offset + data.size();
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoError("fsync");
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoError("ftruncate");
    }
    size_ = size;
    return Status::OK();
  }

  StatusOr<uint64_t> Size() override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return ErrnoError("open " + path);
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      ::close(fd);
      return ErrnoError("lseek " + path);
    }
    return std::unique_ptr<File>(
        new PosixFile(fd, static_cast<uint64_t>(size)));
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir " + path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoError("unlink " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();  // never destroyed
  return env;
}

}  // namespace fault
}  // namespace tardis
