// TardisClient: the one retry/backoff/failover implementation for the
// tardisd line protocol (DESIGN.md §13).
//
// Every caller of a TARDiS cluster edge — shell, e2e driver, benches —
// used to hand-roll its own retry loop. This client centralizes the
// contract:
//
//  * Per-request deadlines. Each logical operation gets one end-to-end
//    budget; connects, sends, reads, and backoff sleeps all draw from it.
//  * Capped exponential backoff with decorrelated jitter (tardis::Backoff)
//    between attempts, so client herds do not re-synchronize after a
//    daemon restart.
//  * Safe-retry classification. The daemon's retryable errors
//    ("ERR BUSY", "ERR DEADLINE", "ERR SHUTTING_DOWN", "ERR BEHIND",
//    "ERR HEADER") all mean the request was NOT executed, so anything
//    may be resent after one. A connection cut mid-request is different:
//    the outcome is unknown, so reads retry anywhere, writes retry only
//    under a session (the `*S` header makes them idempotent — the daemon
//    answers retries from its dedup table), and everything else fails.
//  * Automatic failover across a list of endpoints (routers or sites),
//    rotating on connect failures, cut connections, draining daemons,
//    and ERR BEHIND replicas.
//  * Session guarantees. The client carries read-your-writes/monotonic-
//    reads floors learned from `*F` reply tokens on every request; a
//    failover target that has not caught up refuses with ERR BEHIND and
//    the client moves on. With stale_reads_ms > 0, reads omit floors
//    learned within the last stale_reads_ms and set the stale-ok flag —
//    an explicit staleness bound instead of an error on behind replicas.
//
// Not thread-safe: one TardisClient per client thread (it owns one
// connection and one session sequence counter).

#ifndef TARDIS_CLIENT_TARDIS_CLIENT_H_
#define TARDIS_CLIENT_TARDIS_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "obs/metrics.h"
#include "util/backoff.h"
#include "util/status.h"

namespace tardis {
namespace client {

struct TardisClientOptions {
  /// Endpoints ("host:port") to try, in order: tardisd client ports or
  /// router ports. Failover rotates through them.
  std::vector<std::string> endpoints;
  /// End-to-end budget for one logical operation, including every retry,
  /// reconnect, and backoff sleep.
  uint64_t request_deadline_ms = 5000;
  uint64_t connect_timeout_ms = 1000;
  uint64_t backoff_initial_ms = 20;
  uint64_t backoff_max_ms = 2000;
  /// Seeds the backoff jitter and the generated session id; 0 derives a
  /// seed from the OS. Fix it for deterministic tests.
  uint64_t seed = 0;
  /// Exactly-once session identity; 0 generates a random one. All writes
  /// from this client dedup under it.
  uint64_t session_id = 0;
  /// 0 = strict session reads (ERR BEHIND replicas are failed over).
  /// > 0 = degraded reads: floors learned within the last stale_reads_ms
  /// are omitted and the stale-ok flag set, so a replica behind by at
  /// most that bound may still answer.
  uint64_t stale_reads_ms = 0;
  /// Optional registry for tardis_client_* metrics (not owned; may be
  /// null).
  obs::MetricsRegistry* registry = nullptr;
};

class TardisClient {
 public:
  explicit TardisClient(TardisClientOptions options);
  ~TardisClient();

  TardisClient(const TardisClient&) = delete;
  TardisClient& operator=(const TardisClient&) = delete;

  /// Exactly-once write. On success *state (if non-null) receives the
  /// committing state's "site:seq" identity — identical across retries of
  /// the same operation.
  Status Put(const std::string& key, const std::string& value,
             std::string* state = nullptr);

  /// Session read; Status::NotFound when the key has no value on the
  /// serving branch.
  Status Get(const std::string& key, std::string* value);

  /// Atomic multi-put through a router (fast path or 2PC). Exactly-once:
  /// a retry re-runs the same derived transaction id, so participants
  /// converge on a single outcome. *reply receives the raw reply
  /// ("OK", "OK STATE ...", or "OK TXN <id> ...").
  Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& writes,
      std::string* reply = nullptr);

  /// Generic single-line command with verb-based retry classification.
  Status Call(const std::string& line, std::string* reply);

  /// Generic END-terminated multi-line command (health/metrics/...).
  /// *body receives the lines without the terminator.
  Status CallMulti(const std::string& line, std::string* body);

  uint64_t session_id() const { return session_id_; }
  /// Floors learned from `*F` reply tokens (origin site -> applied seq).
  const std::map<uint32_t, uint64_t>& floors() const { return floors_; }

  // Lifetime operation counts (also exported as tardis_client_* when a
  // registry was supplied).
  uint64_t requests() const { return requests_n_; }
  uint64_t retries() const { return retries_n_; }
  uint64_t failovers() const { return failovers_n_; }
  uint64_t stale_reads() const { return stale_reads_n_; }

 private:
  enum class Verb {
    kReadOnly,      ///< retries anywhere, even after a cut connection
    kSessionWrite,  ///< retries under the session's (sid, seq) dedup
    kUnsafe,        ///< retries only on clean retryable ERR replies
  };
  static Verb Classify(const std::string& line);

  /// The shared engine: runs `line` under the deadline/backoff/failover
  /// policy. `seq` > 0 marks an exactly-once write (dedup header).
  Status Execute(const std::string& line, Verb verb, bool multi,
                 uint64_t seq, std::string* out);

  Status ConnectCurrent(uint64_t deadline_ms);
  void CloseConn();
  /// One send + reply read on the live connection. `multi` reads to the
  /// END terminator. Any IO failure closes the connection; *sent reports
  /// whether any request bytes left the socket (the retry-safety pivot).
  Status Roundtrip(const std::string& line, bool multi, uint64_t deadline_ms,
                   std::string* reply, bool* sent);
  Status ReadLine(uint64_t deadline_ms, std::string* line);
  /// Raises floors_ from a `*F` token's map, stamping when each floor
  /// was first raised (drives the stale-reads window).
  void MergeFloors(const std::map<uint32_t, uint64_t>& learned,
                   uint64_t now_ms);
  std::string BuildHeader(Verb verb, uint64_t seq, uint64_t attempt,
                          uint64_t now_ms, bool* degraded);
  void Rotate();

  const TardisClientOptions options_;
  uint64_t session_id_ = 0;
  uint64_t next_seq_ = 0;  ///< last assigned write sequence
  Backoff backoff_;

  int fd_ = -1;
  size_t endpoint_ = 0;  ///< index into options_.endpoints
  std::string inbuf_;

  std::map<uint32_t, uint64_t> floors_;
  /// When each floor was last raised (NowMillis); drives stale_reads_ms.
  std::map<uint32_t, uint64_t> floor_learned_ms_;

  uint64_t requests_n_ = 0;
  uint64_t retries_n_ = 0;
  uint64_t failovers_n_ = 0;
  uint64_t stale_reads_n_ = 0;
  obs::Counter* requests_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* stale_reads_ = nullptr;
};

}  // namespace client
}  // namespace tardis

#endif  // TARDIS_CLIENT_TARDIS_CLIENT_H_
