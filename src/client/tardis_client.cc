#include "client/tardis_client.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>

#include "cluster/framed_client.h"
#include "util/clock.h"
#include "util/random.h"

namespace tardis {
namespace client {

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.compare(0, strlen(prefix), prefix) == 0;
}

/// Retryable daemon errors all mean "not executed": the request was shed
/// before reaching the store, so any verb may be resent.
bool IsCleanRetryable(const std::string& reply) {
  return StartsWith(reply, "ERR BUSY") || StartsWith(reply, "ERR DEADLINE") ||
         StartsWith(reply, "ERR SHUTTING_DOWN") ||
         StartsWith(reply, "ERR BEHIND") || StartsWith(reply, "ERR HEADER");
}

/// BUSY/DEADLINE are transient load on an otherwise healthy endpoint;
/// the others mean this endpoint will not serve us soon, so fail over.
bool WantsRotate(const std::string& reply) {
  return StartsWith(reply, "ERR SHUTTING_DOWN") ||
         StartsWith(reply, "ERR BEHIND") || StartsWith(reply, "ERR HEADER");
}

void SetSocketTimeouts(int fd, uint64_t ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

TardisClient::TardisClient(TardisClientOptions options)
    : options_(std::move(options)),
      backoff_(options_.backoff_initial_ms, options_.backoff_max_ms) {
  uint64_t seed = options_.seed;
  if (seed == 0) {
    // No determinism requested: decorrelate from other clients on this
    // host (the whole point of the jitter).
    seed = NowNanos() ^ (static_cast<uint64_t>(getpid()) << 32) ^
           reinterpret_cast<uintptr_t>(this);
  }
  backoff_.EnableJitter(seed);
  session_id_ = options_.session_id;
  if (session_id_ == 0) {
    Random rng(seed);
    while (session_id_ == 0) session_id_ = rng.Next();
  }
  if (options_.registry != nullptr) {
    requests_ = options_.registry->RegisterCounter(
        "tardis_client_requests", "logical operations issued by TardisClient");
    retries_ = options_.registry->RegisterCounter(
        "tardis_client_retries", "request attempts beyond the first");
    failovers_ = options_.registry->RegisterCounter(
        "tardis_client_failovers", "endpoint rotations (connect failures, "
        "cut connections, draining or behind replicas)");
    stale_reads_ = options_.registry->RegisterCounter(
        "tardis_client_stale_reads",
        "reads sent with floors relaxed under --stale-reads-ms");
  }
}

TardisClient::~TardisClient() { CloseConn(); }

void TardisClient::CloseConn() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

void TardisClient::Rotate() {
  CloseConn();
  if (options_.endpoints.size() > 1) {
    endpoint_ = (endpoint_ + 1) % options_.endpoints.size();
  }
  failovers_n_++;
  if (failovers_ != nullptr) failovers_->Increment();
}

Status TardisClient::ConnectCurrent(uint64_t deadline_ms) {
  const std::string& endpoint = options_.endpoints[endpoint_];
  std::string host;
  uint16_t port = 0;
  TARDIS_RETURN_IF_ERROR(cluster::ParseEndpoint(endpoint, &host, &port));

  addrinfo hints;
  memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::IOError("resolve " + host);
  }
  const int fd = socket(res->ai_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    freeaddrinfo(res);
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  // Nonblocking connect so the connect attempt honors both the connect
  // timeout and the request deadline instead of the kernel's default.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, res->ai_addr, static_cast<socklen_t>(res->ai_addrlen));
  freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    const Status s =
        Status::IOError("connect " + endpoint + ": " + strerror(errno));
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    const uint64_t now = NowMillis();
    uint64_t budget = options_.connect_timeout_ms;
    if (deadline_ms > now) budget = std::min(budget, deadline_ms - now);
    pollfd pfd{fd, POLLOUT, 0};
    rc = poll(&pfd, 1, static_cast<int>(std::max<uint64_t>(budget, 1)));
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status::IOError("connect " + endpoint + ": " +
                             (rc <= 0 ? "timeout" : strerror(err)));
    }
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking; SO_*TIMEO bound the IO
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  inbuf_.clear();
  return Status::OK();
}

Status TardisClient::ReadLine(uint64_t deadline_ms, std::string* line) {
  size_t nl;
  while ((nl = inbuf_.find('\n')) == std::string::npos) {
    const uint64_t now = NowMillis();
    if (now >= deadline_ms) {
      CloseConn();  // a late reply would desynchronize the stream
      return Status::Unavailable("reply deadline expired");
    }
    SetSocketTimeouts(fd_, deadline_ms - now);
    char chunk[65536];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      inbuf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn();
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::Unavailable("reply deadline expired");
    }
    return Status::IOError("connection lost");
  }
  *line = inbuf_.substr(0, nl);
  inbuf_.erase(0, nl + 1);
  return Status::OK();
}

void TardisClient::MergeFloors(const std::map<uint32_t, uint64_t>& learned,
                               uint64_t now_ms) {
  for (const auto& [site, seq] : learned) {
    uint64_t& cur = floors_[site];
    if (seq > cur || floor_learned_ms_.find(site) == floor_learned_ms_.end()) {
      if (seq > cur) cur = seq;
      floor_learned_ms_[site] = now_ms;
    }
  }
}

Status TardisClient::Roundtrip(const std::string& line, bool multi,
                               uint64_t deadline_ms, std::string* reply,
                               bool* sent) {
  {
    const uint64_t now = NowMillis();
    if (now >= deadline_ms) return Status::Unavailable("deadline expired");
    SetSocketTimeouts(fd_, deadline_ms - now);
  }
  const std::string framed = line + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      *sent = true;
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn();
    return Status::IOError("send: " + std::string(strerror(errno)));
  }
  std::string first;
  TARDIS_RETURN_IF_ERROR(ReadLine(deadline_ms, &first));
  if (!first.empty() && first[0] == '*' && first.size() > 1 &&
      first[1] == 'F') {
    std::map<uint32_t, uint64_t> learned;
    if (StripFloorToken(&first, &learned)) MergeFloors(learned, NowMillis());
  }
  // Multi-line commands answer a single line when rejected before
  // execution (shed, malformed) — mirror the shell's heuristic.
  if (!multi || first == "END" || StartsWith(first, "ERR")) {
    *reply = first == "END" ? std::string() : first;
    return Status::OK();
  }
  std::string body = first;
  while (true) {
    std::string l;
    TARDIS_RETURN_IF_ERROR(ReadLine(deadline_ms, &l));
    if (l == "END") break;
    body += "\n";
    body += l;
  }
  *reply = body;
  return Status::OK();
}

std::string TardisClient::BuildHeader(Verb verb, uint64_t seq,
                                      uint64_t attempt, uint64_t now_ms,
                                      bool* degraded) {
  if (verb == Verb::kUnsafe) return std::string();
  SessionHeader h;
  h.session_id = session_id_;
  if (verb == Verb::kSessionWrite) {
    h.seq = seq;
    h.attempt = attempt;
    h.flags = kSessionFlagWrite;
  }
  const bool relax = verb == Verb::kReadOnly && options_.stale_reads_ms > 0;
  for (const auto& [site, fseq] : floors_) {
    if (relax) {
      const auto it = floor_learned_ms_.find(site);
      const uint64_t learned = it == floor_learned_ms_.end() ? 0 : it->second;
      if (learned + options_.stale_reads_ms > now_ms) {
        // The floor is younger than the staleness bound: omit it and tell
        // the daemon a replica behind by at most that much may answer.
        h.flags |= kSessionFlagStaleOk;
        *degraded = true;
        continue;
      }
    }
    h.floors.emplace_back(site, fseq);
    if (h.floors.size() >= kMaxSessionFloors) break;
  }
  return FormatSessionHeader(h);
}

TardisClient::Verb TardisClient::Classify(const std::string& line) {
  std::stringstream ss(line);
  std::string cmd;
  ss >> cmd;
  static const char* kReads[] = {"get",   "ping",  "health",    "metrics",
                                 "stats", "leaves", "states",   "peers",
                                 "partition", "trace", "sleep", "dag"};
  for (const char* r : kReads) {
    if (cmd == r) return Verb::kReadOnly;
  }
  if (cmd == "put" || cmd == "mput") return Verb::kSessionWrite;
  return Verb::kUnsafe;
}

Status TardisClient::Execute(const std::string& line, Verb verb, bool multi,
                             uint64_t seq, std::string* out) {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("no endpoints configured");
  }
  requests_n_++;
  if (requests_ != nullptr) requests_->Increment();
  const uint64_t deadline = NowMillis() + options_.request_deadline_ms;
  backoff_.Reset();
  uint64_t attempt = 0;
  bool first_try = true;
  std::string last = "no attempt completed";
  while (true) {
    if (!first_try) {
      retries_n_++;
      if (retries_ != nullptr) retries_->Increment();
      uint64_t now = NowMillis();
      backoff_.Fail(now);
      const uint64_t wait = backoff_.RemainingMs(now);
      if (now + wait >= deadline) {
        return Status::Unavailable("request deadline exceeded; last: " + last);
      }
      if (wait > 0) usleep(static_cast<useconds_t>(wait * 1000));
    }
    first_try = false;
    const uint64_t now = NowMillis();
    if (now >= deadline) {
      return Status::Unavailable("request deadline exceeded; last: " + last);
    }
    if (fd_ < 0) {
      const Status cs = ConnectCurrent(deadline);
      if (!cs.ok()) {
        last = cs.ToString();
        Rotate();
        continue;
      }
    }
    bool degraded = false;
    const std::string header = BuildHeader(verb, seq, attempt, now, &degraded);
    if (degraded) {
      stale_reads_n_++;
      if (stale_reads_ != nullptr) stale_reads_->Increment();
    }
    const std::string full = header.empty() ? line : header + " " + line;
    std::string reply;
    bool sent = false;
    const Status s = Roundtrip(full, multi, deadline, &reply, &sent);
    if (!s.ok()) {
      last = s.ToString();
      // Connection cut before any byte went out: nothing executed, all
      // verbs retry. Cut after: the outcome is unknown — reads are
      // harmless, sessioned writes dedup server-side, everything else
      // must surface the uncertainty.
      if (sent && verb == Verb::kUnsafe) {
        return Status::IOError("connection lost with request outcome "
                               "unknown (unsafe to retry): " + last);
      }
      Rotate();
      continue;
    }
    if (IsCleanRetryable(reply)) {
      last = reply;
      if (WantsRotate(reply)) Rotate();
      continue;
    }
    if (seq != 0 && StartsWith(reply, "ERR 2PC abort")) {
      // The transaction definitively aborted: re-derive a fresh txn id so
      // the retry is not confused with the aborted attempt's 2PC state.
      last = reply;
      attempt++;
      continue;
    }
    *out = reply;
    return Status::OK();
  }
}

Status TardisClient::Put(const std::string& key, const std::string& value,
                         std::string* state) {
  const uint64_t seq = ++next_seq_;
  std::string reply;
  TARDIS_RETURN_IF_ERROR(
      Execute("put " + key + " " + value, Verb::kSessionWrite, false, seq,
              &reply));
  if (StartsWith(reply, "OK")) {
    if (state != nullptr) {
      *state = StartsWith(reply, "OK STATE ") ? reply.substr(9) : "";
    }
    return Status::OK();
  }
  return Status::Aborted(reply);
}

Status TardisClient::Get(const std::string& key, std::string* value) {
  std::string reply;
  TARDIS_RETURN_IF_ERROR(
      Execute("get " + key, Verb::kReadOnly, false, 0, &reply));
  if (StartsWith(reply, "VALUE ")) {
    *value = reply.substr(6);
    return Status::OK();
  }
  if (reply == "NOTFOUND") return Status::NotFound(key);
  return Status::Aborted(reply);
}

Status TardisClient::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& writes,
    std::string* reply) {
  std::string line = "mput";
  for (const auto& [key, value] : writes) {
    line += " " + key + " " + value;
  }
  const uint64_t seq = ++next_seq_;
  std::string raw;
  TARDIS_RETURN_IF_ERROR(
      Execute(line, Verb::kSessionWrite, false, seq, &raw));
  if (reply != nullptr) *reply = raw;
  return StartsWith(raw, "OK") ? Status::OK() : Status::Aborted(raw);
}

Status TardisClient::Call(const std::string& line, std::string* reply) {
  const Verb verb = Classify(line);
  const uint64_t seq = verb == Verb::kSessionWrite ? ++next_seq_ : 0;
  return Execute(line, verb, false, seq, reply);
}

Status TardisClient::CallMulti(const std::string& line, std::string* body) {
  const Verb verb = Classify(line);
  const uint64_t seq = verb == Verb::kSessionWrite ? ++next_seq_ : 0;
  return Execute(line, verb, true, seq, body);
}

}  // namespace client
}  // namespace tardis
