// TcpTransport: a real-socket Transport for one site of the mesh — the
// moral equivalent of the paper's Netty layer (§6.4), sized for the
// tardisd daemon.
//
// Topology: every site listens on one port and dials one outbound
// connection to each peer. A site *sends* application traffic only on the
// connections it dialed and *receives* it only on the connections it
// accepted. The first frame on a dialed connection is a kHello carrying
// the dialer's site id; the acceptor validates it (first frame, known
// peer) and answers with a kHelloAck on the same socket — the only bytes
// that ever flow "backwards". Outbound connections that fail or die
// reconnect with capped exponential backoff, and the backoff only resets
// once the peer's kHelloAck arrives (a TCP connect that is later rejected
// at the handshake keeps backing off). While a peer is down, messages
// addressed to it are counted as dropped (gossip tolerates loss —
// anti-entropy recovers it), never an error up the stack.
//
// One background thread multiplexes all sockets with poll(2): the listen
// socket, accepted inbound sockets (read side, frame reassembly +
// decode), and dialed outbound sockets (connect completion + buffered
// writes). Send/Broadcast enqueue encoded bytes under a mutex and wake
// the thread through a self-pipe. A malformed inbound frame (bad CRC,
// hostile length prefix, undecodable payload) closes that connection and
// is otherwise ignored — a fuzzing peer cannot crash the daemon.

#ifndef TARDIS_NET_TCP_TRANSPORT_H_
#define TARDIS_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/transport.h"
#include "util/backoff.h"
#include "util/status.h"

namespace tardis {

struct TcpPeer {
  uint32_t site = 0;
  std::string host;
  uint16_t port = 0;
};

struct TcpTransportOptions {
  uint32_t site_id = 0;
  /// Port this site's replication endpoint listens on. 0 picks an
  /// ephemeral port (see listen_port() after Open).
  uint16_t listen_port = 0;
  std::string listen_host = "0.0.0.0";
  /// Every other site in the mesh.
  std::vector<TcpPeer> peers;
  /// Reconnect backoff: initial delay doubling up to the cap.
  uint64_t reconnect_initial_ms = 20;
  uint64_t reconnect_max_ms = 2000;
  /// Bytes buffered per not-yet-writable peer before new messages are
  /// dropped instead of queued.
  size_t max_sendbuf_bytes = 64u << 20;
};

class TcpTransport : public Transport {
 public:
  /// Binds the listen socket and starts the IO thread. Fails with
  /// IOError if the port cannot be bound.
  static StatusOr<std::unique_ptr<TcpTransport>> Open(
      const TcpTransportOptions& options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Stops the IO thread and closes every socket. Idempotent.
  void Shutdown();

  /// Actual bound port (differs from options when listen_port was 0).
  uint16_t listen_port() const { return listen_port_; }

  /// True once the dialed connection to `site` completed the hello /
  /// hello-ack handshake (not merely the TCP connect).
  bool IsConnected(uint32_t site) const;

  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  /// Outbound handshakes completed after the first (backoff redials).
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// Transport counters plus wire-level byte and reconnect counts.
  void BindMetrics(obs::MetricsRegistry* registry, uint32_t site_id) override;

  // ---- Transport ----------------------------------------------------------
  size_t num_sites() const override { return num_sites_; }
  void Send(uint32_t from, uint32_t to, ReplMessage msg) override;
  void Broadcast(uint32_t from, ReplMessage msg) override;
  bool Receive(uint32_t site, ReplMessage* msg) override;
  bool HasInflight() const override;

  /// Endpoint-local partition: suppresses outbound traffic to and
  /// inbound traffic from the named peer (the other endpoint must do the
  /// same for a symmetric cut, mirroring a real bidirectional outage).
  void Partition(uint32_t a, uint32_t b) override;
  void Heal(uint32_t a, uint32_t b) override;
  void HealAll() override;

 private:
  struct PeerConn {
    TcpPeer peer;
    int fd = -1;
    bool connecting = false;   ///< non-blocking connect in flight
    bool connected = false;    ///< TCP established (hello may be in flight)
    bool handshaked = false;   ///< peer's kHelloAck received
    bool ever_handshaked = false;  ///< distinguishes reconnects from dial #1
    std::string sendbuf;       ///< encoded frames awaiting write
    size_t sendbuf_off = 0;    ///< bytes of sendbuf already written
    std::deque<size_t> frame_lens;  ///< frame boundaries, for drop stats
    std::string recvbuf;       ///< hello-ack reassembly
    Backoff backoff;
  };
  struct InboundConn {
    int fd = -1;
    bool identified = false;   ///< valid kHello received
    uint32_t peer_site = 0;    ///< meaningful once identified
    std::string recvbuf;
    std::string sendbuf;       ///< the kHelloAck awaiting write
    size_t sendbuf_off = 0;
  };

  explicit TcpTransport(const TcpTransportOptions& options);

  Status Listen();
  void IoLoop();
  void Wake();
  void StartConnect(PeerConn* pc, uint64_t now_ms);
  void CloseOutbound(PeerConn* pc, uint64_t now_ms);
  void FlushWrites(PeerConn* pc, uint64_t now_ms);
  /// Parses handshake replies on a dialed connection. Returns false on a
  /// protocol violation (caller closes the connection).
  bool DrainOutboundHandshake(PeerConn* pc);
  void DrainInbound(InboundConn* ic);
  void FlushInboundWrites(InboundConn* ic);
  bool IsKnownPeer(uint32_t site) const;
  void EnqueueEncoded(uint32_t to, const std::string& frame);

  TcpTransportOptions options_;
  size_t num_sites_;
  uint16_t listen_port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  mutable std::mutex mu_;
  std::vector<PeerConn> outbound_;          // one per peer
  std::vector<InboundConn> inbound_;        // accepted connections
  std::deque<ReplMessage> inbox_;           // decoded, awaiting Receive
  std::unordered_set<uint32_t> partitioned_;

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> reconnects_{0};

  std::thread io_;
  std::atomic<bool> stop_{true};
};

}  // namespace tardis

#endif  // TARDIS_NET_TCP_TRANSPORT_H_
