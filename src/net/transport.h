// Transport: the message boundary between replicated sites.
//
// The Replicator (§6.4) is written against this interface only, so the
// same replication logic runs over the in-process SimNetwork fabric
// (tests, benchmarks, deterministic fault injection) and over real TCP
// sockets (the tardisd site daemon). Messages are passed by value and
// moved through the fabric — a broadcast of a large commit record never
// deep-copies the write set once per peer.
//
// Addressing follows the paper's deployment: sites are a fixed, fully
// meshed set identified by dense ids [0, num_sites). A transport either
// spans every site (SimNetwork) or represents one site's endpoint into
// the mesh (TcpTransport); in both cases Send/Receive take explicit site
// ids so the Replicator code is identical.

#ifndef TARDIS_NET_TRANSPORT_H_
#define TARDIS_NET_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "replication/message.h"

namespace tardis {

class Transport {
 public:
  virtual ~Transport() { UnbindMetrics(); }

  /// Number of sites in the mesh (including this one, for endpoint
  /// transports). The pessimistic-GC consent round sizes its quorum
  /// (num_sites - 1 acks) from this.
  virtual size_t num_sites() const = 0;

  /// Ships `msg` from site `from` to site `to`. Never fails from the
  /// caller's point of view: undeliverable messages (partitioned link,
  /// dead peer, unknown destination, self-send) are counted as dropped.
  virtual void Send(uint32_t from, uint32_t to, ReplMessage msg) = 0;

  /// Ships `msg` to every other site. Implementations avoid per-peer
  /// deep copies (SimNetwork moves into the final link; TcpTransport
  /// serializes once and fans out the bytes).
  virtual void Broadcast(uint32_t from, ReplMessage msg) = 0;

  /// Pops the next inbound message addressed to `site`. Returns false if
  /// nothing is ready. Non-blocking; the Replicator pump polls this.
  virtual bool Receive(uint32_t site, ReplMessage* msg) = 0;

  /// True if any message is queued anywhere (in flight, undelivered, or
  /// buffered for write). Used by quiescence checks in tests.
  virtual bool HasInflight() const = 0;

  // ---- fault injection ----------------------------------------------------
  // Cuts/restores the (bidirectional) link between sites a and b.
  // SimNetwork drops at the link; TcpTransport suppresses traffic to and
  // from the named peer at this endpoint. Default: no faults supported.
  virtual void Partition(uint32_t a, uint32_t b) {}
  virtual void Heal(uint32_t a, uint32_t b) {}
  virtual void HealAll() {}

  // ---- stats --------------------------------------------------------------
  uint64_t messages_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  uint64_t messages_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Exports the transport's counters into `registry` as callback-backed
  /// metrics labeled with `site_id`. The registry must outlive the
  /// transport (the destructor unregisters). Derived transports extend
  /// this with their own counters.
  virtual void BindMetrics(obs::MetricsRegistry* registry, uint32_t site_id) {
    UnbindMetrics();
    bound_registry_ = registry;
    const obs::LabelSet site{{"site", std::to_string(site_id)}};
    registry->RegisterCallbackCounter(
        "tardis_net_sent_total", "Messages handed to the transport",
        [this] { return messages_sent(); }, site, this);
    registry->RegisterCallbackCounter(
        "tardis_net_delivered_total", "Messages delivered to a receiver",
        [this] { return messages_delivered(); }, site, this);
    registry->RegisterCallbackCounter(
        "tardis_net_dropped_total",
        "Messages dropped (partition, dead peer, full buffer)",
        [this] { return messages_dropped(); }, site, this);
  }

 protected:
  void UnbindMetrics() {
    if (bound_registry_ != nullptr) {
      bound_registry_->DropCallbacks(this);
      bound_registry_ = nullptr;
    }
  }

  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
  obs::MetricsRegistry* bound_registry_ = nullptr;
};

}  // namespace tardis

#endif  // TARDIS_NET_TRANSPORT_H_
