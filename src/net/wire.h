// Wire codec for replication messages — the binary format tardisd peers
// speak on the wire. The paper's prototype shipped protobuf over Netty
// (§6.4); we use a hand-rolled length-prefixed framing in the same
// varint/length-prefix style as the commit log and WAL.
//
// The same framing carries the cluster coordination traffic: the
// stateless tardis-router and the partition daemons exchange
// kRoute/kRouteReply (fast-path execution) and kPrepare/kPrepareAck/
// kDecide/kDecideAck/kTxnStatus (cross-partition two-phase commit) frames
// over a daemon's --coord-port (see src/cluster/ and DESIGN.md §10).
//
// Frame layout (all fixed-width fields little-endian):
//
//   offset  size  field
//   0       4     payload length N (bytes; must be <= kMaxWirePayload)
//   4       4     masked CRC-32C of the payload (MaskCrc, as in the WAL)
//   8       N     payload
//
// Payload layout:
//
//   offset  size    field
//   0       1       wire version (kWireVersion)
//   1       1       message type (ReplMessage::Type)
//   2       varint  from_site
//   ...             type-specific body (see wire.cc)
//
// Decoding is strictly bounds-checked and total: any truncated, oversized,
// corrupted or trailing-byte input yields Status::Corruption — never a
// crash, throw, or over-read. A version byte ahead of the type byte leaves
// room for forward evolution (unknown versions are rejected loudly rather
// than misparsed).

#ifndef TARDIS_NET_WIRE_H_
#define TARDIS_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "replication/message.h"
#include "util/slice.h"
#include "util/status.h"

namespace tardis {

/// Current wire format version. Bump on incompatible payload changes.
/// v2: kRoute/kPrepare/kDecide carry a trailing distributed-trace
/// context (trace_id, trace_span, sampled) — see DESIGN.md §7.
/// v3: kRoute/kPrepare carry an exactly-once session tag after the trace
/// context, and CommitRecord carries the tag of the commit it replicates
/// (DESIGN.md §13).
inline constexpr uint8_t kWireVersion = 3;

/// Frame header: u32 length + u32 masked CRC.
inline constexpr size_t kWireHeaderBytes = 8;

/// Upper bound on a payload; anything larger is rejected as corrupt
/// before buffering (protects the daemon from hostile length prefixes).
inline constexpr uint32_t kMaxWirePayload = 16u << 20;  // 16 MiB

/// Serializes `msg` into a version-prefixed payload (no frame header),
/// appending to *out.
void EncodeReplMessage(const ReplMessage& msg, std::string* out);

/// Inverse of EncodeReplMessage. The whole payload must be consumed;
/// trailing bytes are corruption.
Status DecodeReplMessage(Slice payload, ReplMessage* out);

/// Serializes `msg` as a complete frame (header + payload), appending to
/// *out. This is what goes on the socket.
void EncodeFrame(const ReplMessage& msg, std::string* out);

/// Tries to extract one complete frame from the front of `buffer`
/// (a stream reassembly buffer).
///   - Needs more bytes: returns OK with *consumed == 0.
///   - Complete valid frame: decodes into *out, sets *consumed to the
///     total frame size (header + payload), returns OK.
///   - Malformed (oversized length, CRC mismatch, undecodable payload):
///     returns Status::Corruption; the connection should be dropped.
Status DecodeFrame(Slice buffer, ReplMessage* out, size_t* consumed);

}  // namespace tardis

#endif  // TARDIS_NET_WIRE_H_
