#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "fault/fault_points.h"
#include "fault/fault_registry.h"
#include "net/wire.h"
#include "util/logging.h"

namespace tardis {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(const TcpTransportOptions& options)
    : options_(options), num_sites_(options.peers.size() + 1) {
  outbound_.reserve(options_.peers.size());
  for (const TcpPeer& peer : options_.peers) {
    PeerConn pc;
    pc.peer = peer;
    pc.backoff =
        Backoff(options_.reconnect_initial_ms, options_.reconnect_max_ms);
    outbound_.push_back(std::move(pc));
  }
}

bool TcpTransport::IsKnownPeer(uint32_t site) const {
  for (const TcpPeer& peer : options_.peers) {
    if (peer.site == site) return true;
  }
  return false;
}

TcpTransport::~TcpTransport() { Shutdown(); }

StatusOr<std::unique_ptr<TcpTransport>> TcpTransport::Open(
    const TcpTransportOptions& options) {
  std::unique_ptr<TcpTransport> t(new TcpTransport(options));
  Status s = t->Listen();
  if (!s.ok()) return s;
  if (pipe(t->wake_pipe_) != 0) {
    return Status::IOError("pipe: " + std::string(strerror(errno)));
  }
  SetNonBlocking(t->wake_pipe_[0]);
  SetNonBlocking(t->wake_pipe_[1]);
  t->stop_.store(false);
  t->io_ = std::thread([raw = t.get()] { raw->IoLoop(); });
  return t;
}

Status TcpTransport::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  if (inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = INADDR_ANY;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind port " + std::to_string(options_.listen_port) +
                           ": " + strerror(errno));
  }
  if (listen(listen_fd_, 64) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);
  return Status::OK();
}

void TcpTransport::Shutdown() {
  if (stop_.exchange(true)) return;
  Wake();
  if (io_.joinable()) io_.join();
  std::lock_guard<std::mutex> guard(mu_);
  for (PeerConn& pc : outbound_) {
    if (pc.fd >= 0) close(pc.fd);
    pc.fd = -1;
    pc.connected = pc.connecting = false;
  }
  for (InboundConn& ic : inbound_) {
    if (ic.fd >= 0) close(ic.fd);
  }
  inbound_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void TcpTransport::Wake() {
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    ssize_t ignored = write(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
}

bool TcpTransport::IsConnected(uint32_t site) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const PeerConn& pc : outbound_) {
    if (pc.peer.site == site) return pc.handshaked;
  }
  return false;
}

void TcpTransport::Send(uint32_t from, uint32_t to, ReplMessage msg) {
  if (from != options_.site_id || to == from) return;
  msg.from_site = from;
  std::string frame;
  EncodeFrame(msg, &frame);
  EnqueueEncoded(to, frame);
}

void TcpTransport::Broadcast(uint32_t from, ReplMessage msg) {
  if (from != options_.site_id) return;
  msg.from_site = from;
  // Serialize once; every peer gets the same bytes.
  std::string frame;
  EncodeFrame(msg, &frame);
  for (const PeerConn& pc : outbound_) EnqueueEncoded(pc.peer.site, frame);
}

void TcpTransport::EnqueueEncoded(uint32_t to, const std::string& frame) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    PeerConn* pc = nullptr;
    for (PeerConn& cand : outbound_) {
      if (cand.peer.site == to) {
        pc = &cand;
        break;
      }
    }
    if (pc == nullptr) return;  // unknown destination, like SimNetwork
    if (partitioned_.count(to) != 0 || pc->fd < 0 ||
        pc->sendbuf.size() - pc->sendbuf_off + frame.size() >
            options_.max_sendbuf_bytes) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pc->sendbuf.append(frame);
    pc->frame_lens.push_back(frame.size());
    sent_.fetch_add(1, std::memory_order_relaxed);
  }
  Wake();
}

bool TcpTransport::Receive(uint32_t site, ReplMessage* msg) {
  if (site != options_.site_id) return false;
  std::lock_guard<std::mutex> guard(mu_);
  if (inbox_.empty()) return false;
  *msg = std::move(inbox_.front());
  inbox_.pop_front();
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool TcpTransport::HasInflight() const {
  std::lock_guard<std::mutex> guard(mu_);
  if (!inbox_.empty()) return true;
  for (const PeerConn& pc : outbound_) {
    if (!pc.frame_lens.empty()) return true;
  }
  for (const InboundConn& ic : inbound_) {
    if (!ic.recvbuf.empty()) return true;
  }
  return false;
}

void TcpTransport::Partition(uint32_t a, uint32_t b) {
  std::lock_guard<std::mutex> guard(mu_);
  if (a == options_.site_id) partitioned_.insert(b);
  if (b == options_.site_id) partitioned_.insert(a);
}

void TcpTransport::Heal(uint32_t a, uint32_t b) {
  std::lock_guard<std::mutex> guard(mu_);
  if (a == options_.site_id) partitioned_.erase(b);
  if (b == options_.site_id) partitioned_.erase(a);
}

void TcpTransport::HealAll() {
  std::lock_guard<std::mutex> guard(mu_);
  partitioned_.clear();
}

void TcpTransport::StartConnect(PeerConn* pc, uint64_t now_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(pc->peer.port);
  if (getaddrinfo(pc->peer.host.c_str(), port.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    CloseOutbound(pc, now_ms);
    return;
  }
  const int fd = socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(res);
    CloseOutbound(pc, now_ms);
    return;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  const int rc = connect(fd, res->ai_addr, res->ai_addrlen);
  freeaddrinfo(res);
  if (rc == 0 || errno == EINPROGRESS) {
    pc->fd = fd;
    pc->connecting = rc != 0;
    pc->connected = rc == 0;
    pc->handshaked = false;
    // The hello MUST be the first frame on the wire. The sendbuf is
    // guaranteed empty here (CloseOutbound clears it and EnqueueEncoded
    // drops while fd < 0), so appending is prepending.
    ReplMessage hello;
    hello.type = ReplMessage::Type::kHello;
    hello.from_site = options_.site_id;
    std::string frame;
    EncodeFrame(hello, &frame);
    pc->sendbuf.append(frame);
    pc->frame_lens.push_back(frame.size());
    // Note: the backoff is NOT reset here. A TCP connect can succeed
    // against a port that then rejects the handshake (wrong process, a
    // proxy, a half-dead peer); resetting on connect would hammer it at
    // the initial delay forever. Only the peer's kHelloAck resets it.
  } else {
    close(fd);
    CloseOutbound(pc, now_ms);
  }
}

void TcpTransport::CloseOutbound(PeerConn* pc, uint64_t now_ms) {
  if (pc->fd >= 0) close(pc->fd);
  pc->fd = -1;
  pc->connecting = false;
  pc->connected = false;
  pc->handshaked = false;
  // Anything still buffered will never reach the peer: gossip tolerates
  // the loss (anti-entropy re-fetches), so count and discard.
  dropped_.fetch_add(pc->frame_lens.size(), std::memory_order_relaxed);
  pc->sendbuf.clear();
  pc->sendbuf_off = 0;
  pc->frame_lens.clear();
  pc->recvbuf.clear();
  pc->backoff.Fail(now_ms);
}

void TcpTransport::FlushWrites(PeerConn* pc, uint64_t now_ms) {
  while (pc->sendbuf_off < pc->sendbuf.size()) {
    size_t want = pc->sendbuf.size() - pc->sendbuf_off;
    if (fault::FaultsArmed()) {
      // Short-write injection: a "net.tcp.send" kLimitWrite spec caps how
      // many bytes one send() may move, forcing the partial-frame resume
      // path that real kernels exercise under socket-buffer pressure.
      want = fault::FaultRegistry::Global().WriteCap("net.tcp.send", want);
    }
    const ssize_t n =
        send(pc->fd, pc->sendbuf.data() + pc->sendbuf_off, want, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_sent_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      pc->sendbuf_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseOutbound(pc, now_ms);
    return;
  }
  // Retire fully written frames so drop accounting stays per-message.
  while (!pc->frame_lens.empty() && pc->frame_lens.front() <= pc->sendbuf_off) {
    const size_t len = pc->frame_lens.front();
    pc->frame_lens.pop_front();
    pc->sendbuf.erase(0, len);
    pc->sendbuf_off -= len;
  }
}

bool TcpTransport::DrainOutboundHandshake(PeerConn* pc) {
  size_t off = 0;
  while (true) {
    ReplMessage msg;
    size_t consumed = 0;
    Status s = DecodeFrame(
        Slice(pc->recvbuf.data() + off, pc->recvbuf.size() - off), &msg,
        &consumed);
    if (!s.ok()) {
      TARDIS_WARN("site %u: bad handshake bytes from site %u: %s",
                  options_.site_id, pc->peer.site, s.ToString().c_str());
      return false;
    }
    if (consumed == 0) break;  // incomplete frame, wait for more bytes
    off += consumed;
    if (msg.type != ReplMessage::Type::kHelloAck ||
        msg.from_site != pc->peer.site) {
      TARDIS_WARN("site %u: unexpected frame on dialed connection to site %u",
                  options_.site_id, pc->peer.site);
      return false;
    }
    if (!pc->handshaked) {
      pc->handshaked = true;
      // This is "the first valid frame from the peer": only now does the
      // reconnect backoff reset.
      pc->backoff.Reset();
      if (pc->ever_handshaked) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      pc->ever_handshaked = true;
    }
  }
  pc->recvbuf.erase(0, off);
  return true;
}

void TcpTransport::DrainInbound(InboundConn* ic) {
  size_t off = 0;
  while (true) {
    ReplMessage msg;
    size_t consumed = 0;
    Status s = DecodeFrame(
        Slice(ic->recvbuf.data() + off, ic->recvbuf.size() - off), &msg,
        &consumed);
    if (!s.ok()) {
      // Malformed bytes: this peer (or fuzzer) is speaking garbage.
      // Closing the connection is the whole defense — never crash.
      TARDIS_WARN("site %u: dropping inbound connection: %s",
                  options_.site_id, s.ToString().c_str());
      close(ic->fd);
      ic->fd = -1;
      ic->recvbuf.clear();
      return;
    }
    if (consumed == 0) break;  // incomplete frame, wait for more bytes
    off += consumed;
    if (!ic->identified) {
      // Handshake gate: the first frame must be a kHello from a known
      // peer; anything else is a stranger and is disconnected before any
      // payload is accepted.
      if (msg.type != ReplMessage::Type::kHello ||
          msg.from_site == options_.site_id || !IsKnownPeer(msg.from_site)) {
        TARDIS_WARN("site %u: dropping inbound connection: no valid hello",
                    options_.site_id);
        close(ic->fd);
        ic->fd = -1;
        ic->recvbuf.clear();
        return;
      }
      ic->identified = true;
      ic->peer_site = msg.from_site;
      ReplMessage ack;
      ack.type = ReplMessage::Type::kHelloAck;
      ack.from_site = options_.site_id;
      EncodeFrame(ack, &ic->sendbuf);
      continue;
    }
    if (msg.type == ReplMessage::Type::kHello ||
        msg.type == ReplMessage::Type::kHelloAck ||
        msg.from_site != ic->peer_site) {
      TARDIS_WARN("site %u: protocol violation from site %u; disconnecting",
                  options_.site_id, ic->peer_site);
      close(ic->fd);
      ic->fd = -1;
      ic->recvbuf.clear();
      return;
    }
    if (partitioned_.count(msg.from_site) != 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      inbox_.push_back(std::move(msg));
    }
  }
  ic->recvbuf.erase(0, off);
}

void TcpTransport::FlushInboundWrites(InboundConn* ic) {
  while (ic->sendbuf_off < ic->sendbuf.size()) {
    const ssize_t n = send(ic->fd, ic->sendbuf.data() + ic->sendbuf_off,
                           ic->sendbuf.size() - ic->sendbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_sent_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      ic->sendbuf_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close(ic->fd);  // peer went away mid-handshake
    ic->fd = -1;
    return;
  }
  ic->sendbuf.clear();
  ic->sendbuf_off = 0;
}

void TcpTransport::IoLoop() {
  std::vector<pollfd> pfds;
  // For pfds[i] (i >= 2): kind 0 = outbound index, kind 1 = inbound index.
  std::vector<std::pair<int, size_t>> index;

  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t now = NowMs();
    int timeout_ms = 50;

    pfds.clear();
    index.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> guard(mu_);
      for (size_t i = 0; i < outbound_.size(); i++) {
        PeerConn& pc = outbound_[i];
        if (pc.fd < 0) {
          if (pc.backoff.Due(now)) StartConnect(&pc, now);
          if (pc.fd < 0) {
            const uint64_t wait = pc.backoff.RemainingMs(now);
            timeout_ms = std::min<int>(timeout_ms, static_cast<int>(wait) + 1);
            continue;
          }
        }
        short events = POLLIN;  // detect peer close/reset
        if (pc.connecting || pc.sendbuf_off < pc.sendbuf.size()) {
          events |= POLLOUT;
        }
        pfds.push_back({pc.fd, events, 0});
        index.emplace_back(0, i);
      }
      for (size_t i = 0; i < inbound_.size(); i++) {
        short events = POLLIN;
        if (inbound_[i].sendbuf_off < inbound_[i].sendbuf.size()) {
          events |= POLLOUT;  // a kHelloAck is waiting to go out
        }
        pfds.push_back({inbound_[i].fd, events, 0});
        index.emplace_back(1, i);
      }
    }

    const int rc = poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      TARDIS_WARN("site %u: poll: %s", options_.site_id, strerror(errno));
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) {  // drain wakeups
      char buf[64];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    if (pfds[1].revents & POLLIN) {  // accept inbound connections
      while (true) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        SetNoDelay(fd);
        std::lock_guard<std::mutex> guard(mu_);
        InboundConn ic;
        ic.fd = fd;
        inbound_.push_back(std::move(ic));
      }
    }

    std::lock_guard<std::mutex> guard(mu_);
    const uint64_t after = NowMs();
    for (size_t p = 2; p < pfds.size(); p++) {
      const auto [kind, i] = index[p - 2];
      const short revents = pfds[p].revents;
      if (revents == 0) continue;
      if (kind == 0) {
        PeerConn& pc = outbound_[i];
        if (pc.fd != pfds[p].fd) continue;  // replaced meanwhile
        if (pc.connecting && (revents & (POLLOUT | POLLERR | POLLHUP))) {
          int err = 0;
          socklen_t len = sizeof(err);
          getsockopt(pc.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            CloseOutbound(&pc, after);
            continue;
          }
          // TCP is up, but the peer has not vouched for itself yet; the
          // backoff stays armed until its kHelloAck arrives.
          pc.connecting = false;
          pc.connected = true;
        }
        if (revents & (POLLERR | POLLHUP)) {
          CloseOutbound(&pc, after);
          continue;
        }
        if (revents & POLLIN) {
          // The only legitimate inbound bytes on a dialed connection are
          // handshake replies; anything else (or EOF) closes it.
          bool closed = false;
          char buf[4096];
          while (true) {
            const ssize_t n = read(pc.fd, buf, sizeof(buf));
            if (n > 0) {
              bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                        std::memory_order_relaxed);
              pc.recvbuf.append(buf, static_cast<size_t>(n));
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            closed = true;
            break;
          }
          if (!pc.recvbuf.empty() && !DrainOutboundHandshake(&pc)) {
            CloseOutbound(&pc, after);
            continue;
          }
          if (closed) {
            CloseOutbound(&pc, after);
            continue;
          }
        }
        if (pc.connected && (revents & POLLOUT)) FlushWrites(&pc, after);
      } else {
        InboundConn& ic = inbound_[i];
        if (ic.fd != pfds[p].fd) continue;
        bool closed = false;
        char buf[65536];
        while (true) {
          const ssize_t n = read(ic.fd, buf, sizeof(buf));
          if (n > 0) {
            bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
            ic.recvbuf.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          closed = true;
          break;
        }
        if (!ic.recvbuf.empty()) DrainInbound(&ic);
        // Push the hello-ack out eagerly (or on POLLOUT if the socket
        // buffer was full).
        if (ic.fd >= 0 && ic.sendbuf_off < ic.sendbuf.size()) {
          FlushInboundWrites(&ic);
        }
        if (closed && ic.fd >= 0) {
          close(ic.fd);
          ic.fd = -1;
        }
      }
    }
    // Compact inbound connections closed during this pass.
    for (size_t i = inbound_.size(); i-- > 0;) {
      if (inbound_[i].fd < 0) inbound_.erase(inbound_.begin() + i);
    }
  }
}

void TcpTransport::BindMetrics(obs::MetricsRegistry* registry,
                               uint32_t site_id) {
  Transport::BindMetrics(registry, site_id);
  const obs::LabelSet site{{"site", std::to_string(site_id)}};
  registry->RegisterCallbackCounter(
      "tardis_net_bytes_sent_total", "Payload bytes written to peer sockets",
      [this] { return bytes_sent(); }, site, this);
  registry->RegisterCallbackCounter(
      "tardis_net_bytes_received_total",
      "Payload bytes read from accepted sockets",
      [this] { return bytes_received(); }, site, this);
  registry->RegisterCallbackCounter(
      "tardis_net_reconnects_total",
      "Outbound connections re-established after a drop",
      [this] { return reconnects(); }, site, this);
}

}  // namespace tardis
