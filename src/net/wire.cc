#include "net/wire.h"

#include "util/coding.h"
#include "util/crc32.h"

namespace tardis {

namespace {

void PutGuid(std::string* out, const GlobalStateId& g) {
  PutVarint64(out, g.site);
  PutVarint64(out, g.seq);
}

bool GetGuid(Slice* in, GlobalStateId* g) {
  uint64_t site = 0, seq = 0;
  if (!GetVarint64(in, &site)) return false;
  if (site > UINT32_MAX) return false;
  if (!GetVarint64(in, &seq)) return false;
  g->site = static_cast<uint32_t>(site);
  g->seq = seq;
  return true;
}

using WriteSet =
    std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>;

void PutWrites(std::string* out, const WriteSet& writes) {
  PutVarint64(out, writes.size());
  for (const auto& [key, value] : writes) {
    PutLengthPrefixed(out, Slice(key));
    PutLengthPrefixed(out, value ? Slice(*value) : Slice());
  }
}

bool GetWrites(Slice* in, WriteSet* writes) {
  uint64_t nwrites = 0;
  if (!GetVarint64(in, &nwrites)) return false;
  if (nwrites > in->size()) return false;
  writes->clear();
  writes->reserve(static_cast<size_t>(nwrites));
  for (uint64_t i = 0; i < nwrites; i++) {
    Slice key, value;
    if (!GetLengthPrefixed(in, &key)) return false;
    if (!GetLengthPrefixed(in, &value)) return false;
    writes->emplace_back(key.ToString(),
                         std::make_shared<const std::string>(value.ToString()));
  }
  return true;
}

/// Trace context carried by the coordination frames a request fans out
/// through (kRoute/kPrepare/kDecide), so every hop logs spans under the
/// originating trace id. Encoded unconditionally — three bytes when
/// untraced.
void PutTrace(std::string* out, const ReplMessage& msg) {
  PutVarint64(out, msg.trace_id);
  PutVarint64(out, msg.trace_span);
  out->push_back(msg.trace_sampled ? 1 : 0);
}

bool GetTrace(Slice* in, ReplMessage* msg) {
  if (!GetVarint64(in, &msg->trace_id)) return false;
  if (!GetVarint64(in, &msg->trace_span)) return false;
  if (in->empty()) return false;
  msg->trace_sampled = (*in)[0] != 0;
  in->remove_prefix(1);
  return true;
}

/// Exactly-once session tag on the frames that execute client writes
/// (kRoute/kPrepare). Encoded unconditionally — two bytes when
/// unsessioned.
void PutSession(std::string* out, const ReplMessage& msg) {
  PutVarint64(out, msg.session_id);
  PutVarint64(out, msg.session_seq);
}

bool GetSession(Slice* in, ReplMessage* msg) {
  if (!GetVarint64(in, &msg->session_id)) return false;
  return GetVarint64(in, &msg->session_seq);
}

void PutCommitRecord(std::string* out, const CommitRecord& r) {
  PutGuid(out, r.guid);
  PutVarint64(out, r.parent_guids.size());
  for (const GlobalStateId& p : r.parent_guids) PutGuid(out, p);
  out->push_back(r.is_merge ? 1 : 0);
  PutWrites(out, r.writes);
  // v3: the session tag replicates with the commit so every site's dedup
  // table learns about tagged commits from other sites.
  PutVarint64(out, r.session_id);
  PutVarint64(out, r.session_seq);
}

bool GetCommitRecord(Slice* in, CommitRecord* r) {
  if (!GetGuid(in, &r->guid)) return false;
  uint64_t nparents = 0;
  if (!GetVarint64(in, &nparents)) return false;
  // A parent guid is >= 2 bytes; cheap sanity bound before reserving.
  if (nparents > in->size()) return false;
  r->parent_guids.clear();
  r->parent_guids.reserve(static_cast<size_t>(nparents));
  for (uint64_t i = 0; i < nparents; i++) {
    GlobalStateId p;
    if (!GetGuid(in, &p)) return false;
    r->parent_guids.push_back(p);
  }
  if (in->empty()) return false;
  r->is_merge = (*in)[0] != 0;
  in->remove_prefix(1);
  if (!GetWrites(in, &r->writes)) return false;
  if (!GetVarint64(in, &r->session_id)) return false;
  return GetVarint64(in, &r->session_seq);
}

}  // namespace

void EncodeReplMessage(const ReplMessage& msg, std::string* out) {
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(msg.type));
  PutVarint64(out, msg.from_site);
  switch (msg.type) {
    case ReplMessage::Type::kCommit:
      PutCommitRecord(out, msg.commit);
      break;
    case ReplMessage::Type::kSyncRequest:
    case ReplMessage::Type::kHeartbeat:
      PutVarint64(out, msg.seen_seq.size());
      for (uint64_t s : msg.seen_seq) PutVarint64(out, s);
      break;
    case ReplMessage::Type::kCeilingRequest:
    case ReplMessage::Type::kCeilingAck:
    case ReplMessage::Type::kCeilingCommit:
      PutGuid(out, msg.ceiling);
      PutVarint64(out, msg.ceiling_epoch);
      break;
    case ReplMessage::Type::kSnapshot:
      PutVarint64(out, msg.seen_seq.size());
      for (uint64_t s : msg.seen_seq) PutVarint64(out, s);
      PutVarint64(out, msg.snapshot.size());
      for (const CommitRecord& r : msg.snapshot) PutCommitRecord(out, r);
      break;
    case ReplMessage::Type::kHello:
    case ReplMessage::Type::kHelloAck:
      break;  // identity is the from_site varint every payload carries
    case ReplMessage::Type::kRoute:
      PutVarint64(out, msg.txn_id);
      PutLengthPrefixed(out, Slice(msg.text));
      PutWrites(out, msg.commit.writes);
      PutTrace(out, msg);
      PutSession(out, msg);
      break;
    case ReplMessage::Type::kRouteReply:
      PutVarint64(out, msg.txn_id);
      PutLengthPrefixed(out, Slice(msg.text));
      break;
    case ReplMessage::Type::kPrepare:
      PutVarint64(out, msg.txn_id);
      PutWrites(out, msg.commit.writes);
      PutVarint64(out, msg.endpoints.size());
      for (const std::string& ep : msg.endpoints) {
        PutLengthPrefixed(out, Slice(ep));
      }
      PutTrace(out, msg);
      PutSession(out, msg);
      break;
    case ReplMessage::Type::kPrepareAck:
      PutVarint64(out, msg.txn_id);
      out->push_back(static_cast<char>(msg.decision));
      break;
    case ReplMessage::Type::kDecide:
      PutVarint64(out, msg.txn_id);
      out->push_back(static_cast<char>(msg.decision));
      PutTrace(out, msg);
      break;
    case ReplMessage::Type::kDecideAck:
      PutVarint64(out, msg.txn_id);
      out->push_back(static_cast<char>(msg.decision));
      out->push_back(msg.forked ? 1 : 0);
      break;
    case ReplMessage::Type::kTxnStatus:
      PutVarint64(out, msg.txn_id);
      break;
  }
}

Status DecodeReplMessage(Slice payload, ReplMessage* out) {
  Slice in = payload;
  if (in.size() < 2) return Status::Corruption("payload too short");
  const uint8_t version = static_cast<uint8_t>(in[0]);
  if (version != kWireVersion) {
    return Status::Corruption("unsupported wire version " +
                              std::to_string(version));
  }
  const uint8_t type_byte = static_cast<uint8_t>(in[1]);
  if (type_byte > static_cast<uint8_t>(ReplMessage::Type::kTxnStatus)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(type_byte));
  }
  in.remove_prefix(2);

  ReplMessage msg;
  msg.type = static_cast<ReplMessage::Type>(type_byte);
  uint64_t from = 0;
  if (!GetVarint64(&in, &from) || from > UINT32_MAX) {
    return Status::Corruption("bad from_site");
  }
  msg.from_site = static_cast<uint32_t>(from);

  switch (msg.type) {
    case ReplMessage::Type::kCommit:
      if (!GetCommitRecord(&in, &msg.commit)) {
        return Status::Corruption("bad commit record");
      }
      break;
    case ReplMessage::Type::kSyncRequest:
    case ReplMessage::Type::kHeartbeat: {
      uint64_t count = 0;
      if (!GetVarint64(&in, &count) || count > in.size()) {
        return Status::Corruption("bad seen_seq count");
      }
      msg.seen_seq.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; i++) {
        uint64_t s = 0;
        if (!GetVarint64(&in, &s)) return Status::Corruption("bad seen_seq");
        msg.seen_seq.push_back(s);
      }
      break;
    }
    case ReplMessage::Type::kCeilingRequest:
    case ReplMessage::Type::kCeilingAck:
    case ReplMessage::Type::kCeilingCommit:
      if (!GetGuid(&in, &msg.ceiling)) {
        return Status::Corruption("bad ceiling guid");
      }
      if (!GetVarint64(&in, &msg.ceiling_epoch)) {
        return Status::Corruption("bad ceiling epoch");
      }
      break;
    case ReplMessage::Type::kSnapshot: {
      uint64_t count = 0;
      if (!GetVarint64(&in, &count) || count > in.size()) {
        return Status::Corruption("bad seen_seq count");
      }
      msg.seen_seq.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; i++) {
        uint64_t s = 0;
        if (!GetVarint64(&in, &s)) return Status::Corruption("bad seen_seq");
        msg.seen_seq.push_back(s);
      }
      uint64_t nrecords = 0;
      if (!GetVarint64(&in, &nrecords) || nrecords > in.size()) {
        return Status::Corruption("bad snapshot record count");
      }
      msg.snapshot.reserve(static_cast<size_t>(nrecords));
      for (uint64_t i = 0; i < nrecords; i++) {
        CommitRecord r;
        if (!GetCommitRecord(&in, &r)) {
          return Status::Corruption("bad snapshot record");
        }
        msg.snapshot.push_back(std::move(r));
      }
      break;
    }
    case ReplMessage::Type::kHello:
    case ReplMessage::Type::kHelloAck:
      break;
    case ReplMessage::Type::kRoute: {
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      Slice text;
      if (!GetLengthPrefixed(&in, &text)) {
        return Status::Corruption("bad route command");
      }
      msg.text = text.ToString();
      if (!GetWrites(&in, &msg.commit.writes)) {
        return Status::Corruption("bad route write set");
      }
      if (!GetTrace(&in, &msg)) {
        return Status::Corruption("bad route trace context");
      }
      if (!GetSession(&in, &msg)) {
        return Status::Corruption("bad route session tag");
      }
      break;
    }
    case ReplMessage::Type::kRouteReply: {
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      Slice text;
      if (!GetLengthPrefixed(&in, &text)) {
        return Status::Corruption("bad route reply");
      }
      msg.text = text.ToString();
      break;
    }
    case ReplMessage::Type::kPrepare: {
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      if (!GetWrites(&in, &msg.commit.writes)) {
        return Status::Corruption("bad prepare write set");
      }
      uint64_t neps = 0;
      if (!GetVarint64(&in, &neps) || neps > in.size()) {
        return Status::Corruption("bad endpoint count");
      }
      msg.endpoints.reserve(static_cast<size_t>(neps));
      for (uint64_t i = 0; i < neps; i++) {
        Slice ep;
        if (!GetLengthPrefixed(&in, &ep)) {
          return Status::Corruption("bad endpoint");
        }
        msg.endpoints.push_back(ep.ToString());
      }
      if (!GetTrace(&in, &msg)) {
        return Status::Corruption("bad prepare trace context");
      }
      if (!GetSession(&in, &msg)) {
        return Status::Corruption("bad prepare session tag");
      }
      break;
    }
    case ReplMessage::Type::kPrepareAck:
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      if (in.empty()) return Status::Corruption("missing decision byte");
      msg.decision = static_cast<uint8_t>(in[0]);
      in.remove_prefix(1);
      break;
    case ReplMessage::Type::kDecide:
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      if (in.empty()) return Status::Corruption("missing decision byte");
      msg.decision = static_cast<uint8_t>(in[0]);
      in.remove_prefix(1);
      if (!GetTrace(&in, &msg)) {
        return Status::Corruption("bad decide trace context");
      }
      break;
    case ReplMessage::Type::kDecideAck:
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      if (in.size() < 2) return Status::Corruption("short decide ack");
      msg.decision = static_cast<uint8_t>(in[0]);
      msg.forked = in[1] != 0;
      in.remove_prefix(2);
      break;
    case ReplMessage::Type::kTxnStatus:
      if (!GetVarint64(&in, &msg.txn_id)) {
        return Status::Corruption("bad txn id");
      }
      break;
  }
  if (!in.empty()) return Status::Corruption("trailing bytes in payload");
  *out = std::move(msg);
  return Status::OK();
}

void EncodeFrame(const ReplMessage& msg, std::string* out) {
  const size_t header_at = out->size();
  out->append(kWireHeaderBytes, '\0');
  EncodeReplMessage(msg, out);
  const size_t payload_len = out->size() - header_at - kWireHeaderBytes;
  const char* payload = out->data() + header_at + kWireHeaderBytes;
  EncodeFixed32(out->data() + header_at, static_cast<uint32_t>(payload_len));
  EncodeFixed32(out->data() + header_at + 4,
                MaskCrc(Crc32c(payload, payload_len)));
}

Status DecodeFrame(Slice buffer, ReplMessage* out, size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < kWireHeaderBytes) return Status::OK();  // need header
  const uint32_t payload_len = DecodeFixed32(buffer.data());
  if (payload_len > kMaxWirePayload) {
    return Status::Corruption("oversized frame: " +
                              std::to_string(payload_len) + " bytes");
  }
  if (buffer.size() < kWireHeaderBytes + payload_len) {
    return Status::OK();  // need more payload bytes
  }
  const uint32_t expected_crc = UnmaskCrc(DecodeFixed32(buffer.data() + 4));
  const char* payload = buffer.data() + kWireHeaderBytes;
  if (Crc32c(payload, payload_len) != expected_crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  TARDIS_RETURN_IF_ERROR(DecodeReplMessage(Slice(payload, payload_len), out));
  *consumed = kWireHeaderBytes + payload_len;
  return Status::OK();
}

}  // namespace tardis
