// Zipfian key chooser, as used by YCSB (Gray et al.'s rejection-free
// algorithm) plus the "scrambled" variant that spreads hot keys across the
// keyspace. The paper's skewed workloads use Zipfian with theta = 0.99.

#ifndef TARDIS_UTIL_ZIPF_H_
#define TARDIS_UTIL_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace tardis {

class ZipfianGenerator {
 public:
  /// Generates values in [0, n) with Zipfian skew `theta` (YCSB default
  /// 0.99; the paper uses p=0.99).
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42);

  uint64_t Next();

  uint64_t item_count() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zeta_n_;
  double alpha_;
  double eta_;
  double zeta2_;
  Random rng_;
};

/// Scrambled Zipfian: same popularity distribution, but the popular items
/// are scattered uniformly over the key space (YCSB's default pattern).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta = 0.99,
                            uint64_t seed = 42)
      : n_(n), zipf_(n, theta, seed) {}

  uint64_t Next() {
    const uint64_t v = zipf_.Next();
    return FnvHash64(v) % n_;
  }

 private:
  static uint64_t FnvHash64(uint64_t v) {
    uint64_t hash = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; i++) {
      hash ^= (v >> (i * 8)) & 0xFF;
      hash *= 0x100000001B3ull;
    }
    return hash;
  }

  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace tardis

#endif  // TARDIS_UTIL_ZIPF_H_
