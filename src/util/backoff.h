// Backoff: capped exponential backoff with explicit state transitions.
//
// Shared by the transport layer (outbound reconnect pacing) and by
// clients of the tardisd line protocol (retrying ERR BUSY / retryable
// responses). The policy is deliberately time-source agnostic: callers
// feed in "now" in whatever clock they use (wall ms, ticks), which keeps
// the deterministic test harnesses deterministic.
//
// With EnableJitter(seed) the delay becomes *decorrelated jitter*
// (delay' = uniform[initial, min(max, 3 * delay)]): after a daemon
// restart, plain doubling makes every waiting client retry on the same
// beat and the reconnect storm re-sheds itself; jitter spreads the
// retries across the window. The PRNG is seeded by the caller, so
// deterministic harnesses stay deterministic.

#ifndef TARDIS_UTIL_BACKOFF_H_
#define TARDIS_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "util/random.h"

namespace tardis {

class Backoff {
 public:
  Backoff() = default;
  Backoff(uint64_t initial_ms, uint64_t max_ms)
      : initial_ms_(initial_ms), max_ms_(max_ms) {}

  /// Switches Fail() to decorrelated jitter, drawing from a PRNG seeded
  /// with `seed`. Every delay stays within [initial_ms, max_ms].
  void EnableJitter(uint64_t seed) {
    jitter_ = true;
    rng_ = Random(seed);
  }
  bool jitter_enabled() const { return jitter_; }

  /// Records a failure at time `now_ms`: doubles the current delay
  /// (starting from `initial_ms`, capped at `max_ms`) and arms the next
  /// attempt time. With jitter enabled the next delay is drawn uniformly
  /// from [initial_ms, min(max_ms, 3 * previous delay)] instead.
  void Fail(uint64_t now_ms) {
    if (delay_ms_ == 0) {
      delay_ms_ = initial_ms_;
    } else if (jitter_) {
      const uint64_t hi = std::min(
          max_ms_, delay_ms_ > max_ms_ / 3 ? max_ms_ : delay_ms_ * 3);
      delay_ms_ = hi <= initial_ms_ ? initial_ms_
                                    : rng_.Range(initial_ms_, hi);
    } else {
      delay_ms_ = std::min(delay_ms_ * 2, max_ms_);
    }
    next_attempt_ms_ = now_ms + delay_ms_;
  }

  /// Records a success: the next failure starts over from `initial_ms`.
  void Reset() {
    delay_ms_ = 0;
    next_attempt_ms_ = 0;
  }

  /// True when a new attempt is allowed at time `now_ms`.
  bool Due(uint64_t now_ms) const { return now_ms >= next_attempt_ms_; }

  /// Milliseconds until the next attempt is due (0 when already due).
  uint64_t RemainingMs(uint64_t now_ms) const {
    return now_ms >= next_attempt_ms_ ? 0 : next_attempt_ms_ - now_ms;
  }

  uint64_t delay_ms() const { return delay_ms_; }
  uint64_t next_attempt_ms() const { return next_attempt_ms_; }

 private:
  uint64_t initial_ms_ = 20;
  uint64_t max_ms_ = 2000;
  uint64_t delay_ms_ = 0;  // 0 = no failure since the last Reset
  uint64_t next_attempt_ms_ = 0;
  bool jitter_ = false;
  Random rng_;
};

}  // namespace tardis

#endif  // TARDIS_UTIL_BACKOFF_H_
