// Backoff: capped exponential backoff with explicit state transitions.
//
// Shared by the transport layer (outbound reconnect pacing) and by
// clients of the tardisd line protocol (retrying ERR BUSY / retryable
// responses). The policy is deliberately time-source agnostic: callers
// feed in "now" in whatever clock they use (wall ms, ticks), which keeps
// the deterministic test harnesses deterministic.

#ifndef TARDIS_UTIL_BACKOFF_H_
#define TARDIS_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

namespace tardis {

class Backoff {
 public:
  Backoff() = default;
  Backoff(uint64_t initial_ms, uint64_t max_ms)
      : initial_ms_(initial_ms), max_ms_(max_ms) {}

  /// Records a failure at time `now_ms`: doubles the current delay
  /// (starting from `initial_ms`, capped at `max_ms`) and arms the next
  /// attempt time.
  void Fail(uint64_t now_ms) {
    delay_ms_ = delay_ms_ == 0 ? initial_ms_
                               : std::min(delay_ms_ * 2, max_ms_);
    next_attempt_ms_ = now_ms + delay_ms_;
  }

  /// Records a success: the next failure starts over from `initial_ms`.
  void Reset() {
    delay_ms_ = 0;
    next_attempt_ms_ = 0;
  }

  /// True when a new attempt is allowed at time `now_ms`.
  bool Due(uint64_t now_ms) const { return now_ms >= next_attempt_ms_; }

  /// Milliseconds until the next attempt is due (0 when already due).
  uint64_t RemainingMs(uint64_t now_ms) const {
    return now_ms >= next_attempt_ms_ ? 0 : next_attempt_ms_ - now_ms;
  }

  uint64_t delay_ms() const { return delay_ms_; }
  uint64_t next_attempt_ms() const { return next_attempt_ms_; }

 private:
  uint64_t initial_ms_ = 20;
  uint64_t max_ms_ = 2000;
  uint64_t delay_ms_ = 0;  // 0 = no failure since the last Reset
  uint64_t next_attempt_ms_ = 0;
};

}  // namespace tardis

#endif  // TARDIS_UTIL_BACKOFF_H_
