// Status: lightweight error propagation for all TARDiS modules.
//
// Modeled on the RocksDB/LevelDB Status idiom: functions that can fail
// return a Status (or a StatusOr<T>); the caller inspects ok() or the
// specific code. No exceptions cross module boundaries.

#ifndef TARDIS_UTIL_STATUS_H_
#define TARDIS_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tardis {

/// Canonical error codes used across the store.
enum class Code : uint8_t {
  kOk = 0,
  kNotFound = 1,        ///< key/state/record does not exist
  kCorruption = 2,      ///< checksum mismatch or malformed on-disk data
  kInvalidArgument = 3, ///< caller error (bad constraint, bad handle, ...)
  kIOError = 4,         ///< underlying file operation failed
  kAborted = 5,         ///< transaction aborted (constraint unsatisfiable)
  kBusy = 6,            ///< lock wait timeout / deadlock victim (2PL baseline)
  kConflict = 7,        ///< OCC validation failure
  kNotSupported = 8,    ///< feature intentionally unimplemented
  kUnavailable = 9,     ///< state garbage-collected or not yet replicated
};

/// Result of an operation; cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Value-or-Status, for functions that produce a result on success.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {}  // NOLINT: implicit by design
  StatusOr(T value)                              // NOLINT: implicit by design
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tardis

/// Early-return helper: propagate a non-OK Status to the caller.
#define TARDIS_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::tardis::Status _s = (expr);               \
    if (!_s.ok()) return _s;                    \
  } while (0)

#endif  // TARDIS_UTIL_STATUS_H_
