// CRC-32C (Castagnoli) for WAL and page checksums.

#ifndef TARDIS_UTIL_CRC32_H_
#define TARDIS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tardis {

/// CRC-32C of [data, data+n), seeded with `init` (chainable).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

/// Masked CRC as stored on disk, so that a CRC of CRC-bearing bytes does
/// not degenerate (same trick as LevelDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot << 15) | (rot >> 17);
}

}  // namespace tardis

#endif  // TARDIS_UTIL_CRC32_H_
