// Fast deterministic PRNG for workload generation and tests.
// xorshift128+ — not cryptographic, but fast, seedable and reproducible,
// which is what benchmark harnesses need.

#ifndef TARDIS_UTIL_RANDOM_H_
#define TARDIS_UTIL_RANDOM_H_

#include <cstdint>
#include <initializer_list>

namespace tardis {

class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1Dull) {
    // SplitMix64 to expand the seed into two non-zero lanes.
    uint64_t z = seed;
    for (uint64_t* lane : {&s0_, &s1_}) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      *lane = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace tardis

#endif  // TARDIS_UTIL_RANDOM_H_
