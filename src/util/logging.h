// Minimal leveled logger. Off by default above WARN so benchmarks are not
// perturbed; tests can raise verbosity via TardisLogLevel().
//
// Every line carries an absolute monotonic timestamp (seconds, comparable
// across the processes of one machine — tardisd fleets interleave their
// stderr meaningfully), the site id when set, and a small per-thread id.
// Lines are written with a single unbuffered fwrite, so concurrent
// loggers never interleave mid-line.

#ifndef TARDIS_UTIL_LOGGING_H_
#define TARDIS_UTIL_LOGGING_H_

#include <cstdio>

namespace tardis {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level actually emitted.
LogLevel& TardisLogLevel();

/// Tags every subsequent log line with this site id (tardisd calls it at
/// startup). Negative (the default) omits the tag.
void SetLogSite(int site);

void LogImpl(LogLevel level, const char* file, int line, const char* fmt,
             ...) __attribute__((format(printf, 4, 5)));

}  // namespace tardis

#define TARDIS_LOG(level, ...)                                           \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::tardis::TardisLogLevel())) {                  \
      ::tardis::LogImpl(level, __FILE__, __LINE__, __VA_ARGS__);         \
    }                                                                    \
  } while (0)

#define TARDIS_DEBUG(...) TARDIS_LOG(::tardis::LogLevel::kDebug, __VA_ARGS__)
#define TARDIS_INFO(...) TARDIS_LOG(::tardis::LogLevel::kInfo, __VA_ARGS__)
#define TARDIS_WARN(...) TARDIS_LOG(::tardis::LogLevel::kWarn, __VA_ARGS__)
#define TARDIS_ERROR(...) TARDIS_LOG(::tardis::LogLevel::kError, __VA_ARGS__)

#endif  // TARDIS_UTIL_LOGGING_H_
