#include "util/crc32.h"

namespace tardis {

namespace {

// Table-driven CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected
// 0x82F63B78). Table built once at startup.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int k = 0; k < 8; k++) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; i++) {
    crc = kTable.t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tardis
