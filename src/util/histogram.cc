#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace tardis {

// Bucket limits: 1,2,...,10, then 12,14,...  roughly geometric with ~1.2x
// growth, matching LevelDB's histogram granularity.
const uint64_t Histogram::kBucketLimits[kNumBuckets] = {
    1,          2,          3,          4,          5,
    6,          7,          8,          9,          10,
    12,         14,         16,         18,         20,
    25,         30,         35,         40,         45,
    50,         60,         70,         80,         90,
    100,        120,        140,        160,        180,
    200,        250,        300,        350,        400,
    450,        500,        600,        700,        800,
    900,        1000,       1200,       1400,       1600,
    1800,       2000,       2500,       3000,       3500,
    4000,       4500,       5000,       6000,       7000,
    8000,       9000,       10000,      12000,      14000,
    16000,      18000,      20000,      25000,      30000,
    35000,      40000,      45000,      50000,      60000,
    70000,      80000,      90000,      100000,     120000,
    140000,     160000,     180000,     200000,     250000,
    300000,     350000,     400000,     450000,     500000,
    600000,     700000,     800000,     900000,     1000000,
    1200000,    1400000,    1600000,    1800000,    2000000,
    2500000,    3000000,    3500000,    4000000,    4500000,
    5000000,    6000000,    7000000,    8000000,    9000000,
    10000000,   12000000,   14000000,   16000000,   18000000,
    20000000,   25000000,   30000000,   35000000,   40000000,
    45000000,   50000000,   60000000,   70000000,   80000000,
    90000000,   100000000,  120000000,  140000000,  160000000,
    180000000,  200000000,  250000000,  300000000,  350000000,
    400000000,  450000000,  500000000,  600000000,  700000000,
    800000000,  900000000,  1000000000, 1200000000, 1400000000,
    1600000000, 1800000000, 2000000000, 2500000000, 3000000000,
    3500000000, 4000000000, 4500000000, 5000000000, 6000000000,
    7000000000, 8000000000, 9000000000, std::numeric_limits<uint64_t>::max()};

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(uint64_t value) {
  const uint64_t* end = kBucketLimits + kNumBuckets;
  const uint64_t* it = std::lower_bound(kBucketLimits, end, value);
  return static_cast<int>(it - kBucketLimits);
}

void Histogram::Add(uint64_t value) {
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  buckets_[BucketFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double threshold = static_cast<double>(count_) * q;
  double cumulative = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= threshold) {
      // Interpolate within the bucket.
      const uint64_t left = (i == 0) ? 0 : kBucketLimits[i - 1];
      const uint64_t right = kBucketLimits[i];
      const double in_bucket = static_cast<double>(buckets_[i]);
      const double pos =
          in_bucket == 0 ? 0 : (threshold - (cumulative - in_bucket)) / in_bucket;
      double v = static_cast<double>(left) +
                 pos * static_cast<double>(right - left);
      return std::min(v, static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu mean=%.2f min=%llu max=%llu p50=%.1f p99=%.1f",
           static_cast<unsigned long long>(count_), mean(),
           static_cast<unsigned long long>(min()),
           static_cast<unsigned long long>(max_), Percentile(0.5),
           Percentile(0.99));
  return buf;
}

}  // namespace tardis
