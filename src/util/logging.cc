#include "util/logging.h"

#include <cstdarg>
#include <cstring>
#include <mutex>

namespace tardis {

LogLevel& TardisLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void LogImpl(LogLevel level, const char* file, int line, const char* fmt,
             ...) {
  static std::mutex mu;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const char* base = strrchr(file, '/');
  base = base ? base + 1 : file;

  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);

  std::lock_guard<std::mutex> guard(mu);
  fprintf(stderr, "[%s %s:%d] %s\n", names[static_cast<int>(level)], base,
          line, msg);
}

}  // namespace tardis
