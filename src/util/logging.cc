#include "util/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <mutex>

#include "util/clock.h"

namespace tardis {

LogLevel& TardisLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace {

std::atomic<int> g_log_site{-1};

/// Small dense thread ids (1, 2, 3, ...) beat raw pthread handles for
/// reading interleaved output.
unsigned ThreadTag() {
  static std::atomic<unsigned> next{1};
  thread_local unsigned tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

}  // namespace

void SetLogSite(int site) {
  g_log_site.store(site, std::memory_order_relaxed);
}

void LogImpl(LogLevel level, const char* file, int line, const char* fmt,
             ...) {
  static std::mutex mu;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const char* base = strrchr(file, '/');
  base = base ? base + 1 : file;

  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);

  // Pre-format the whole line, then emit it with one unbuffered fwrite:
  // concurrent loggers (and concurrent tardisd processes sharing a
  // terminal) never tear a line apart.
  char prefix[64];
  const int site = g_log_site.load(std::memory_order_relaxed);
  if (site >= 0) {
    snprintf(prefix, sizeof(prefix), "%.6f s%d/t%u", NowMicros() / 1e6, site,
             ThreadTag());
  } else {
    snprintf(prefix, sizeof(prefix), "%.6f t%u", NowMicros() / 1e6,
             ThreadTag());
  }
  char out[1200];
  int n = snprintf(out, sizeof(out), "[%s %s %s:%d] %s\n", prefix,
                   names[static_cast<int>(level)], base, line, msg);
  if (n < 0) return;
  if (static_cast<size_t>(n) >= sizeof(out)) n = sizeof(out) - 1;

  std::lock_guard<std::mutex> guard(mu);
  fwrite(out, 1, static_cast<size_t>(n), stderr);
  fflush(stderr);
}

}  // namespace tardis
