// Latency histogram with log-scaled buckets; used by the benchmark driver
// to report mean/median/p99 per operation and per transaction.

#ifndef TARDIS_UTIL_HISTOGRAM_H_
#define TARDIS_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tardis {

class Histogram {
 public:
  Histogram();

  /// Record a sample (any unit; the driver records microseconds).
  void Add(uint64_t value);
  /// Merge another histogram into this one (for per-thread aggregation).
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const;
  /// Approximate quantile via bucket interpolation; q in [0,1].
  double Percentile(double q) const;

  std::string Summary() const;

  /// Bucket introspection for native Prometheus histogram exposition.
  /// Bucket i holds samples with kBucketLimits[i-1] < v <= BucketLimit(i)
  /// — exactly Prometheus `le` semantics; the last limit is UINT64_MAX
  /// (the +Inf bucket).
  static int bucket_count() { return kNumBuckets; }
  static uint64_t BucketLimit(int i) { return kBucketLimits[i]; }
  uint64_t bucket_value(int i) const { return buckets_[i]; }

 private:
  static constexpr int kNumBuckets = 154;
  static const uint64_t kBucketLimits[kNumBuckets];
  static int BucketFor(uint64_t value);

  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace tardis

#endif  // TARDIS_UTIL_HISTOGRAM_H_
