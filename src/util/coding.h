// Fixed-width and varint encodings for the storage layer (pages, WAL
// records, commit-log entries). Little-endian fixed encodings; LEB128-style
// varints. Mirrors the LevelDB coding conventions.

#ifndef TARDIS_UTIL_CODING_H_
#define TARDIS_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace tardis {

inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

/// Parses a varint64 from *input, advancing it past the parsed bytes.
/// Returns false on truncated/overlong input.
inline bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

/// Length-prefixed string: varint length followed by the bytes.
inline void PutLengthPrefixed(std::string* dst, const Slice& s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), static_cast<size_t>(len));
  input->remove_prefix(static_cast<size_t>(len));
  return true;
}

}  // namespace tardis

#endif  // TARDIS_UTIL_CODING_H_
