// Tiny test-and-test-and-set spinlock. Used for very short critical
// sections (key-version list heads, DAG leaf set) where a futex-backed
// mutex would dominate the cost of the protected work.

#ifndef TARDIS_UTIL_SPINLOCK_H_
#define TARDIS_UTIL_SPINLOCK_H_

#include <atomic>

namespace tardis {

class SpinLock {
 public:
  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; on a single-core host the scheduler will preempt us
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace tardis

#endif  // TARDIS_UTIL_SPINLOCK_H_
