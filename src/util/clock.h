// Monotonic time helpers used by the benchmark driver and the simulated
// network.

#ifndef TARDIS_UTIL_CLOCK_H_
#define TARDIS_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace tardis {

/// Nanoseconds from an arbitrary (but monotone) origin.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }
inline uint64_t NowMillis() { return NowNanos() / 1000000; }

/// RAII stopwatch: accumulates elapsed microseconds into *sink.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(uint64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimerUs() { *sink_ += (NowNanos() - start_) / 1000; }

  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace tardis

#endif  // TARDIS_UTIL_CLOCK_H_
